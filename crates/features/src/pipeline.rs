//! The end-to-end feature extractor (Table II).
//!
//! [`PreparedDoc`] performs the per-user work that does not depend on the
//! candidate set (tokenize, lemmatize, char-class counts). A
//! [`FeatureExtractor`] is then *fitted* on a set of documents — ranking
//! n-grams by corpus frequency, selecting the top N per family, and
//! computing IDF — producing a [`FeatureSpace`] that vectorizes any
//! document into the concatenated, L2-normalized feature vector:
//!
//! ```text
//! [ word 1–3-grams | char 1–5-grams | 42 char-class slots | 24-bin activity ]
//! ```
//!
//! The paper's *two-stage* trick (§IV-I) — refitting the space on just the
//! k surviving candidates, which re-ranks the selected n-grams and changes
//! the IDF weights — is expressed by simply fitting a second
//! `FeatureExtractor` on the candidate subset.
//!
//! Block weighting: each block is L2-normalized and scaled by a
//! configurable weight before concatenation, then the whole vector is
//! normalized. The cosine of two such vectors is the weight-averaged cosine
//! of the blocks; the defaults favour the text blocks with the activity
//! profile as the behavioural side-channel, matching the relative boosts
//! reported in Fig. 4 of the paper.

use crate::charfreq::{char_class_frequencies, NUM_SLOTS};
use crate::ngram::{char_ngrams_up_to, word_ngrams_up_to};
use crate::sparse::SparseVector;
use crate::tfidf::TfIdf;
use crate::vocab::{count_terms, VocabBuilder, Vocabulary};
use darklight_activity::profile::{DailyActivityProfile, HOURS};
use darklight_govern::EstimateBytes;
use darklight_obs::{Counter, PipelineMetrics, Timer};
use darklight_text::lemma::Lemmatizer;
use darklight_text::token::{TokenKind, Tokenizer};

/// Configuration of the feature families (Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureConfig {
    /// Maximum word n-gram length (paper: 3).
    pub max_word_n: usize,
    /// Maximum char n-gram length (paper: 5).
    pub max_char_n: usize,
    /// Word n-grams kept after corpus-frequency ranking.
    pub top_word_ngrams: usize,
    /// Char n-grams kept after corpus-frequency ranking.
    pub top_char_ngrams: usize,
    /// Weight of the word n-gram block.
    pub word_weight: f32,
    /// Weight of the char n-gram block.
    pub char_weight: f32,
    /// Weight of the 42 char-class slots (0 disables the block).
    pub char_class_weight: f32,
    /// Weight of the 24-bin activity profile (0 disables the block).
    pub activity_weight: f32,
}

impl FeatureConfig {
    /// The search-space-reduction preset: 60,000 word + 30,000 char n-grams
    /// (Table II, "Space Reduction" column).
    pub fn space_reduction() -> FeatureConfig {
        FeatureConfig {
            max_word_n: 3,
            max_char_n: 5,
            top_word_ngrams: 60_000,
            top_char_ngrams: 30_000,
            word_weight: 1.0,
            char_weight: 1.0,
            char_class_weight: 0.25,
            activity_weight: 0.2,
        }
    }

    /// The final-classification preset: 50,000 word + 15,000 char n-grams
    /// (Table II, "Final" column).
    pub fn final_stage() -> FeatureConfig {
        FeatureConfig {
            top_word_ngrams: 50_000,
            top_char_ngrams: 15_000,
            ..FeatureConfig::space_reduction()
        }
    }

    /// Returns a copy with the activity block disabled — the "text features
    /// only" configuration of Table III and Fig. 4.
    pub fn without_activity(mut self) -> FeatureConfig {
        self.activity_weight = 0.0;
        self
    }

    /// Returns a copy with the given activity weight.
    pub fn with_activity_weight(mut self, w: f32) -> FeatureConfig {
        self.activity_weight = w;
        self
    }
}

impl Default for FeatureConfig {
    fn default() -> FeatureConfig {
        FeatureConfig::space_reduction()
    }
}

impl EstimateBytes for FeatureConfig {
    fn estimate_bytes(&self) -> u64 {
        // Four usize knobs plus four f32 weights, all inline.
        4 * 8 + 4 * 4
    }
}

/// A document after per-user preprocessing: lemmatized word tokens, the
/// whitespace-normalized character stream, and char-class frequencies.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedDoc {
    words: Vec<String>,
    char_text: String,
    char_class: [f64; NUM_SLOTS],
}

impl PreparedDoc {
    /// Prepares a document: tokenizes, lowercases, lemmatizes (when a
    /// lemmatizer is supplied), and computes char-class frequencies.
    ///
    /// ```
    /// use darklight_features::pipeline::PreparedDoc;
    /// use darklight_text::lemma::Lemmatizer;
    /// let l = Lemmatizer::new();
    /// let d = PreparedDoc::prepare("The wolves were running fast!", Some(&l));
    /// assert_eq!(d.words(), ["the", "wolf", "be", "run", "fast"]);
    /// ```
    pub fn prepare(text: &str, lemmatizer: Option<&Lemmatizer>) -> PreparedDoc {
        let mut words = Vec::new();
        for t in Tokenizer::new(text) {
            match t.kind {
                TokenKind::Word => {
                    let lower = t.text.to_lowercase();
                    let lemma = match lemmatizer {
                        Some(l) => l.lemma_owned(&lower),
                        None => lower,
                    };
                    words.push(lemma);
                }
                TokenKind::Number => words.push(t.text.to_string()),
                _ => {}
            }
        }
        PreparedDoc {
            words,
            char_text: text.to_string(),
            char_class: char_class_frequencies(text),
        }
    }

    /// The lemmatized word/number tokens.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Number of word/number tokens — the paper's "number of words per
    /// user" knob (Table III).
    pub fn word_len(&self) -> usize {
        self.words.len()
    }

    /// The raw character stream used for char n-grams.
    pub fn char_text(&self) -> &str {
        &self.char_text
    }

    /// Truncates the document to its first `max_words` word tokens, also
    /// truncating the character stream proportionally. Used by the
    /// word-budget sweep of Table III.
    pub fn truncate_words(&self, max_words: usize) -> PreparedDoc {
        if max_words >= self.words.len() {
            return self.clone();
        }
        let words: Vec<String> = self.words[..max_words].to_vec();
        let keep_ratio = max_words as f64 / self.words.len() as f64;
        let keep_chars = (self.char_text.chars().count() as f64 * keep_ratio) as usize;
        let char_text: String = self.char_text.chars().take(keep_chars).collect();
        let char_class = char_class_frequencies(&char_text);
        PreparedDoc {
            words,
            char_text,
            char_class,
        }
    }
}

/// A document with its n-gram counts precomputed at the maximum n-gram
/// lengths. Counting is the expensive part of vectorization; the two-stage
/// algorithm refits a feature space per unknown user, so counting once per
/// document (instead of once per refit) is a large win.
#[derive(Debug, Clone, PartialEq)]
pub struct CountedDoc {
    word_counts: std::collections::HashMap<String, u32>,
    char_counts: std::collections::HashMap<String, u32>,
    char_class: [f64; NUM_SLOTS],
    word_len: usize,
}

impl CountedDoc {
    /// Counts a prepared document's n-grams up to the given maxima (use the
    /// largest `max_word_n`/`max_char_n` of any config you will fit).
    pub fn from_prepared(doc: &PreparedDoc, max_word_n: usize, max_char_n: usize) -> CountedDoc {
        CountedDoc {
            word_counts: count_terms(word_ngrams_up_to(&doc.words, max_word_n)),
            char_counts: count_terms(char_ngrams_up_to(&doc.char_text, max_char_n)),
            char_class: doc.char_class,
            word_len: doc.words.len(),
        }
    }

    /// Number of word tokens in the underlying document.
    pub fn word_len(&self) -> usize {
        self.word_len
    }

    /// The word n-gram counts.
    pub fn word_counts(&self) -> &std::collections::HashMap<String, u32> {
        &self.word_counts
    }

    /// The char n-gram counts.
    pub fn char_counts(&self) -> &std::collections::HashMap<String, u32> {
        &self.char_counts
    }
}

/// Rough bytes of one counting map: string payload plus a flat per-entry
/// charge for the `String` header, the `u32`, and bucket overhead. A sum
/// over entries is order-independent, so the estimate is deterministic
/// even though the map itself is not.
fn count_map_bytes(map: &std::collections::HashMap<String, u32>) -> u64 {
    map.keys().map(|k| k.len() as u64 + 48).sum::<u64>() + 48
}

impl EstimateBytes for PreparedDoc {
    fn estimate_bytes(&self) -> u64 {
        self.words.iter().map(|w| w.len() as u64 + 24).sum::<u64>()
            + self.char_text.len() as u64
            + (NUM_SLOTS as u64) * 8
            + 64
    }
}

impl EstimateBytes for CountedDoc {
    fn estimate_bytes(&self) -> u64 {
        count_map_bytes(&self.word_counts)
            + count_map_bytes(&self.char_counts)
            + (NUM_SLOTS as u64) * 8
            + 64
    }
}

/// Pre-resolved instruments for the vectorization hot path; all no-ops
/// unless the extractor was given an enabled [`PipelineMetrics`].
#[derive(Debug, Clone, Default)]
// audit:allow(estimate-bytes-coverage) -- shared metric handles, not per-record data; the governor never counts instruments
struct SpaceInstruments {
    /// Wall-clock per `vectorize_counted` call.
    vectorize: Timer,
    /// Documents vectorized in this space.
    vectors: Counter,
    /// Total non-zero entries across produced vectors.
    nnz: Counter,
}

/// A fitted feature space: frozen vocabularies, IDF weights, and the block
/// layout.
#[derive(Debug, Clone)]
pub struct FeatureSpace {
    config: FeatureConfig,
    word_vocab: Vocabulary,
    word_tfidf: TfIdf,
    char_vocab: Vocabulary,
    char_tfidf: TfIdf,
    instruments: SpaceInstruments,
}

impl EstimateBytes for FeatureSpace {
    fn estimate_bytes(&self) -> u64 {
        // Instruments are shared handles, not per-space payload.
        self.config.estimate_bytes()
            + self.word_vocab.estimate_bytes()
            + self.word_tfidf.estimate_bytes()
            + self.char_vocab.estimate_bytes()
            + self.char_tfidf.estimate_bytes()
    }
}

/// Fits [`FeatureSpace`]s on document collections.
#[derive(Debug, Clone, Default)]
pub struct FeatureExtractor {
    config: FeatureConfig,
    metrics: PipelineMetrics,
    /// Worker threads for fitting (0/1 = serial). Callers pass an already
    /// resolved count; the two-stage engine's per-unknown refits stay
    /// serial to avoid nesting pools inside its own worker threads.
    threads: usize,
}

impl FeatureExtractor {
    /// Creates an extractor with the given configuration.
    pub fn new(config: FeatureConfig) -> FeatureExtractor {
        FeatureExtractor {
            config,
            metrics: PipelineMetrics::disabled(),
            threads: 1,
        }
    }

    /// Records fit and vectorization activity into `metrics`; spaces
    /// fitted afterwards inherit the handle.
    pub fn with_metrics(mut self, metrics: PipelineMetrics) -> FeatureExtractor {
        self.metrics = metrics;
        self
    }

    /// Fits on up to `threads` worker threads (map-reduce over document
    /// shards; the fitted vocabulary is identical to a serial fit for
    /// every thread count). `0` is treated as 1 (serial).
    pub fn with_threads(mut self, threads: usize) -> FeatureExtractor {
        self.threads = threads.max(1);
        self
    }

    /// The configuration.
    pub fn config(&self) -> &FeatureConfig {
        &self.config
    }

    /// Records the shape of a freshly fitted space and wires up the
    /// hot-path instruments it will carry.
    fn finish_space(&self, word_vocab: Vocabulary, char_vocab: Vocabulary) -> FeatureSpace {
        let word_tfidf = TfIdf::fit(&word_vocab);
        let char_tfidf = TfIdf::fit(&char_vocab);
        let space = FeatureSpace {
            config: self.config.clone(),
            word_vocab,
            word_tfidf,
            char_vocab,
            char_tfidf,
            instruments: SpaceInstruments {
                vectorize: self.metrics.timer("features.vectorize"),
                vectors: self.metrics.counter("features.vectors"),
                nnz: self.metrics.counter("features.vector_nnz"),
            },
        };
        self.metrics.counter("features.fits").incr();
        self.metrics
            .gauge("features.word_vocab")
            .set(space.word_vocab_len() as i64);
        self.metrics
            .gauge("features.char_vocab")
            .set(space.char_vocab_len() as i64);
        self.metrics.gauge("features.dim").set(space.dim() as i64);
        space
    }

    /// Fits the vocabularies and IDF weights on `docs` (the paper fits on
    /// the *known* author set, then vectorizes knowns and unknowns in that
    /// space).
    pub fn fit<'a, I>(&self, docs: I) -> FeatureSpace
    where
        I: IntoIterator<Item = &'a PreparedDoc>,
    {
        let _fit = self.metrics.timer("features.fit").start();
        let docs: Vec<&PreparedDoc> = docs.into_iter().collect();
        let (word_builder, char_builder) = self.accumulate(&docs, |doc, wb, cb| {
            wb.add_doc_counts(&count_terms(word_ngrams_up_to(
                &doc.words,
                self.config.max_word_n,
            )));
            cb.add_doc_counts(&count_terms(char_ngrams_up_to(
                &doc.char_text,
                self.config.max_char_n,
            )));
        });
        let word_vocab = word_builder.select_top(self.config.top_word_ngrams);
        let char_vocab = char_builder.select_top(self.config.top_char_ngrams);
        self.finish_space(word_vocab, char_vocab)
    }

    /// The map-reduce core of both fit paths: each worker accumulates a
    /// private pair of [`VocabBuilder`]s over its contiguous document
    /// shard, and the shards are merged serially in shard order. Term
    /// totals, document frequencies, and document counts all sum, and
    /// top-N selection ranks by (total, term) alone, so the fitted
    /// vocabularies are identical to a serial pass for every thread count.
    fn accumulate<D, F>(&self, docs: &[D], add: F) -> (VocabBuilder, VocabBuilder)
    where
        D: Sync,
        F: Fn(&D, &mut VocabBuilder, &mut VocabBuilder) + Sync,
    {
        let threads = self.threads.max(1).min(docs.len().max(1));
        self.metrics
            .gauge("features.fit_threads")
            .set(threads as i64);
        let shards = darklight_par::par_map_chunks(docs, threads, |shard| {
            let mut wb = VocabBuilder::new();
            let mut cb = VocabBuilder::new();
            for doc in shard {
                add(doc, &mut wb, &mut cb);
            }
            (wb, cb)
        });
        let mut word_builder = VocabBuilder::new();
        let mut char_builder = VocabBuilder::new();
        for (wb, cb) in shards {
            word_builder.merge(wb);
            char_builder.merge(cb);
        }
        (word_builder, char_builder)
    }

    /// Fits from precomputed [`CountedDoc`]s. The counts must have been
    /// produced with n-gram maxima at least as large as this config's
    /// (counting at larger maxima only adds longer grams, which simply
    /// compete in the frequency ranking exactly as the paper's do).
    pub fn fit_counted<'a, I>(&self, docs: I) -> FeatureSpace
    where
        I: IntoIterator<Item = &'a CountedDoc>,
    {
        let _fit = self.metrics.timer("features.fit").start();
        let docs: Vec<&CountedDoc> = docs.into_iter().collect();
        let (word_builder, char_builder) = self.accumulate(&docs, |doc, wb, cb| {
            wb.add_doc_counts(&doc.word_counts);
            cb.add_doc_counts(&doc.char_counts);
        });
        let word_vocab = word_builder.select_top(self.config.top_word_ngrams);
        let char_vocab = char_builder.select_top(self.config.top_char_ngrams);
        self.finish_space(word_vocab, char_vocab)
    }
}

impl FeatureSpace {
    /// Reassembles a space from its frozen parts — the configuration and
    /// the two fitted vocabularies. The IDF weights are *recomputed* from
    /// the vocabularies' document frequencies ([`TfIdf::fit`] is a pure
    /// function of the vocabulary), so a space rebuilt from a persisted
    /// artifact vectorizes bit-identically to the original fit. The
    /// rebuilt space carries disabled instruments; artifact loads are not
    /// a fit and record no `features.*` metrics.
    pub fn from_parts(
        config: FeatureConfig,
        word_vocab: Vocabulary,
        char_vocab: Vocabulary,
    ) -> FeatureSpace {
        let word_tfidf = TfIdf::fit(&word_vocab);
        let char_tfidf = TfIdf::fit(&char_vocab);
        FeatureSpace {
            config,
            word_vocab,
            word_tfidf,
            char_vocab,
            char_tfidf,
            instruments: SpaceInstruments::default(),
        }
    }

    /// The configuration the space was fitted with.
    pub fn config(&self) -> &FeatureConfig {
        &self.config
    }

    /// The fitted word n-gram vocabulary.
    pub fn word_vocab(&self) -> &Vocabulary {
        &self.word_vocab
    }

    /// The fitted char n-gram vocabulary.
    pub fn char_vocab(&self) -> &Vocabulary {
        &self.char_vocab
    }

    /// Dense offset of the char n-gram block.
    fn char_offset(&self) -> u32 {
        self.word_vocab.len() as u32
    }

    /// Dense offset of the char-class block.
    fn class_offset(&self) -> u32 {
        self.char_offset() + self.char_vocab.len() as u32
    }

    /// Dense offset of the activity block.
    fn activity_offset(&self) -> u32 {
        self.class_offset() + NUM_SLOTS as u32
    }

    /// Total dimensionality of the space.
    pub fn dim(&self) -> usize {
        self.activity_offset() as usize + HOURS
    }

    /// Number of selected word n-grams.
    pub fn word_vocab_len(&self) -> usize {
        self.word_vocab.len()
    }

    /// Number of selected char n-grams.
    pub fn char_vocab_len(&self) -> usize {
        self.char_vocab.len()
    }

    /// Vectorizes a document (optionally with its activity profile) into
    /// the unit-norm concatenated feature vector. With
    /// `activity_weight == 0` or `activity == None` the activity block is
    /// all zeros.
    pub fn vectorize(
        &self,
        doc: &PreparedDoc,
        activity: Option<&DailyActivityProfile>,
    ) -> SparseVector {
        let counted =
            CountedDoc::from_prepared(doc, self.config.max_word_n, self.config.max_char_n);
        self.vectorize_counted(&counted, activity)
    }

    /// Vectorizes a precounted document; see [`FeatureSpace::vectorize`].
    pub fn vectorize_counted(
        &self,
        doc: &CountedDoc,
        activity: Option<&DailyActivityProfile>,
    ) -> SparseVector {
        let _vec = self.instruments.vectorize.start();
        let mut v = self
            .word_tfidf
            .transform(&self.word_vocab, &doc.word_counts);
        v = v.l2_normalized();
        v.scale(self.config.word_weight);

        let mut cv = self
            .char_tfidf
            .transform(&self.char_vocab, &doc.char_counts);
        cv = cv.l2_normalized();
        cv.scale(self.config.char_weight);
        v.concat(&cv, self.char_offset());

        if self.config.char_class_weight > 0.0 {
            let mut ccv = SparseVector::from_pairs(
                doc.char_class
                    .iter()
                    .enumerate()
                    .filter(|&(_, &f)| f > 0.0)
                    .map(|(i, &f)| (i as u32, f as f32)),
            );
            ccv = ccv.l2_normalized();
            ccv.scale(self.config.char_class_weight);
            v.concat(&ccv, self.class_offset());
        }

        if self.config.activity_weight > 0.0 {
            if let Some(profile) = activity {
                let mut av = SparseVector::from_pairs(
                    profile
                        .shares()
                        .iter()
                        .enumerate()
                        .filter(|&(_, &s)| s > 0.0)
                        .map(|(h, &s)| (h as u32, s as f32)),
                );
                av = av.l2_normalized();
                av.scale(self.config.activity_weight);
                v.concat(&av, self.activity_offset());
            }
        }
        let v = v.l2_normalized();
        self.instruments.vectors.incr();
        self.instruments.nnz.add(v.nnz() as u64);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darklight_activity::profile::DailyActivityProfile;

    fn prep(text: &str) -> PreparedDoc {
        let l = Lemmatizer::new();
        PreparedDoc::prepare(text, Some(&l))
    }

    fn profile(hour: usize) -> DailyActivityProfile {
        let mut counts = [0u32; HOURS];
        counts[hour] = 10;
        DailyActivityProfile::from_counts(counts).unwrap()
    }

    #[test]
    fn prepare_lemmatizes_and_counts_classes() {
        let d = prep("Wolves were running!! 42 times");
        assert_eq!(d.words(), ["wolf", "be", "run", "42", "time"]);
        assert!(d.char_class.iter().any(|&f| f > 0.0)); // '!' and digits
        assert_eq!(d.word_len(), 5);
    }

    #[test]
    fn prepare_without_lemmatizer() {
        let d = PreparedDoc::prepare("Wolves running", None);
        assert_eq!(d.words(), ["wolves", "running"]);
    }

    #[test]
    fn truncate_words_limits_budget() {
        let d = prep("one two three four five six seven eight nine ten");
        let t = d.truncate_words(4);
        assert_eq!(t.word_len(), 4);
        assert!(t.char_text().len() < d.char_text().len());
        // Truncating beyond length is identity.
        assert_eq!(d.truncate_words(100).word_len(), d.word_len());
    }

    #[test]
    fn vectors_are_unit_norm() {
        let docs = [
            prep("i always ship with tracking and stealth is great"),
            prep("never had a problem with this vendor, top quality"),
        ];
        let space = FeatureExtractor::new(FeatureConfig::space_reduction()).fit(&docs);
        let v = space.vectorize(&docs[0], Some(&profile(9)));
        assert!((v.norm() - 1.0).abs() < 1e-5);
        assert!(v.nnz() > 0);
    }

    #[test]
    fn same_doc_has_cosine_one() {
        let docs = [prep("repeat the very same words again and again")];
        let space = FeatureExtractor::new(FeatureConfig::final_stage()).fit(&docs);
        let a = space.vectorize(&docs[0], Some(&profile(10)));
        let b = space.vectorize(&docs[0], Some(&profile(10)));
        assert!((a.cosine(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn similar_docs_score_higher_than_dissimilar() {
        let docs = [
            prep("i love psychedelic mushrooms and trip reports from the garden"),
            prep("i love psychedelic mushrooms and reading trip reports here"),
            prep("bitcoin fees are insane today the mempool is backed up badly"),
        ];
        let space = FeatureExtractor::new(FeatureConfig::space_reduction()).fit(&docs);
        let v: Vec<SparseVector> = docs.iter().map(|d| space.vectorize(d, None)).collect();
        assert!(v[0].cosine(&v[1]) > v[0].cosine(&v[2]));
    }

    #[test]
    fn activity_block_influences_similarity() {
        let docs = [
            prep("completely different words about one topic entirely"),
            prep("utterly distinct vocabulary concerning another theme"),
        ];
        let space = FeatureExtractor::new(FeatureConfig::space_reduction()).fit(&docs);
        let same_hours = space
            .vectorize(&docs[0], Some(&profile(9)))
            .cosine(&space.vectorize(&docs[1], Some(&profile(9))));
        let diff_hours = space
            .vectorize(&docs[0], Some(&profile(9)))
            .cosine(&space.vectorize(&docs[1], Some(&profile(21))));
        assert!(same_hours > diff_hours);
    }

    #[test]
    fn without_activity_ignores_profile() {
        let docs = [prep("text that stays exactly the same every time here")];
        let cfg = FeatureConfig::space_reduction().without_activity();
        let space = FeatureExtractor::new(cfg).fit(&docs);
        let a = space.vectorize(&docs[0], Some(&profile(3)));
        let b = space.vectorize(&docs[0], Some(&profile(15)));
        assert!((a.cosine(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn refit_on_subset_changes_space() {
        let docs: Vec<PreparedDoc> = [
            "alpha beta gamma delta epsilon zeta",
            "alpha beta gamma something else entirely",
            "unrelated words that share nothing at all",
        ]
        .iter()
        .map(|s| prep(s))
        .collect();
        let full = FeatureExtractor::new(FeatureConfig::space_reduction()).fit(&docs);
        let sub = FeatureExtractor::new(FeatureConfig::final_stage()).fit(&docs[..2]);
        // The subset space reflects only the two first docs' vocabulary.
        assert!(sub.word_vocab_len() < full.word_vocab_len());
    }

    #[test]
    fn dims_account_for_all_blocks() {
        let docs = [prep("just a few words to fit on")];
        let space = FeatureExtractor::new(FeatureConfig::space_reduction()).fit(&docs);
        assert_eq!(
            space.dim(),
            space.word_vocab_len() + space.char_vocab_len() + NUM_SLOTS + HOURS
        );
    }

    #[test]
    fn metrics_capture_fit_shape_and_vector_activity() {
        let metrics = PipelineMetrics::enabled();
        let docs = [
            prep("some words to fit the space on"),
            prep("other words for the second document"),
        ];
        let space = FeatureExtractor::new(FeatureConfig::space_reduction())
            .with_metrics(metrics.clone())
            .fit(&docs);
        let v = space.vectorize(&docs[0], None);
        assert_eq!(metrics.counter("features.fits").get(), 1);
        assert_eq!(metrics.timer("features.fit").count(), 1);
        assert_eq!(metrics.gauge("features.dim").get() as usize, space.dim());
        assert_eq!(
            metrics.gauge("features.word_vocab").get() as usize,
            space.word_vocab_len()
        );
        assert_eq!(metrics.counter("features.vectors").get(), 1);
        assert_eq!(metrics.counter("features.vector_nnz").get(), v.nnz() as u64);
        assert_eq!(metrics.timer("features.vectorize").count(), 1);
    }

    #[test]
    fn threaded_fit_matches_serial_exactly() {
        let texts = [
            "alpha beta gamma delta epsilon zeta eta theta",
            "alpha beta something else entirely different here",
            "unrelated words that share nothing at all today",
            "beta gamma delta words appearing again and again",
            "a fifth document so shards stay ragged on two threads",
        ];
        let docs: Vec<PreparedDoc> = texts.iter().map(|t| prep(t)).collect();
        let counted: Vec<CountedDoc> = docs
            .iter()
            .map(|d| CountedDoc::from_prepared(d, 3, 5))
            .collect();
        let cfg = FeatureConfig::space_reduction();
        let serial = FeatureExtractor::new(cfg.clone()).fit_counted(&counted);
        for threads in [2, 3, 7] {
            let par = FeatureExtractor::new(cfg.clone())
                .with_threads(threads)
                .fit_counted(&counted);
            assert_eq!(par.dim(), serial.dim(), "threads = {threads}");
            // Identical vocabularies ⇒ identical vectors for any doc.
            for (d, c) in docs.iter().zip(&counted) {
                let a = serial.vectorize_counted(c, None);
                let b = par.vectorize_counted(c, None);
                assert!((a.cosine(&b) - 1.0).abs() < 1e-9, "doc {:?}", d.words());
            }
            // And the prepared-doc fit path agrees too.
            let par_fit = FeatureExtractor::new(cfg.clone())
                .with_threads(threads)
                .fit(&docs);
            assert_eq!(par_fit.dim(), serial.dim());
        }
    }

    #[test]
    fn from_parts_rebuilds_a_bit_identical_space() {
        let docs = [
            prep("i always ship with tracking and stealth is great"),
            prep("never had a problem with this vendor, top quality"),
            prep("bitcoin fees are insane today the mempool is backed up"),
        ];
        let space = FeatureExtractor::new(FeatureConfig::space_reduction()).fit(&docs);
        let rebuilt = FeatureSpace::from_parts(
            space.config().clone(),
            space.word_vocab().clone(),
            space.char_vocab().clone(),
        );
        assert_eq!(rebuilt.dim(), space.dim());
        for d in &docs {
            let a = space.vectorize(d, Some(&profile(9)));
            let b = rebuilt.vectorize(d, Some(&profile(9)));
            assert_eq!(a.nnz(), b.nnz());
            for ((ia, va), (ib, vb)) in a.iter().zip(b.iter()) {
                assert_eq!(ia, ib);
                assert_eq!(va.to_bits(), vb.to_bits(), "index {ia}");
            }
        }
    }

    #[test]
    fn table_ii_presets() {
        let sr = FeatureConfig::space_reduction();
        assert_eq!((sr.top_word_ngrams, sr.top_char_ngrams), (60_000, 30_000));
        let fin = FeatureConfig::final_stage();
        assert_eq!((fin.top_word_ngrams, fin.top_char_ngrams), (50_000, 15_000));
        assert_eq!(fin.max_word_n, 3);
        assert_eq!(fin.max_char_n, 5);
    }
}
