//! The hashing trick: vocabulary-free vectorization.
//!
//! The paper's pipeline materializes explicit top-N vocabularies; at §IV-J
//! scale that vocabulary itself is a memory cost. Feature hashing maps
//! every n-gram to `hash(gram) mod dim` with a hash-derived sign, giving a
//! fixed-dimension embedding with no fitted state whose inner products
//! approximate the exact ones (Weinberger et al., 2009). Provided as an
//! alternative reduction-stage vectorizer for memory-constrained batch
//! processing; the experiment harness can compare it against the exact
//! pipeline.

use crate::sparse::SparseVector;
use std::collections::HashMap;

/// A stateless hashing vectorizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashingVectorizer {
    dim: u32,
    signed: bool,
}

impl HashingVectorizer {
    /// Creates a vectorizer with `dim` output dimensions. Signed hashing
    /// (recommended) cancels collision bias in expectation.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: u32, signed: bool) -> HashingVectorizer {
        assert!(dim > 0, "hashing dimension must be positive");
        HashingVectorizer { dim, signed }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Vectorizes term counts into the hashed space (unit L2 norm).
    pub fn vectorize(&self, counts: &HashMap<String, u32>) -> SparseVector {
        let pairs = counts.iter().map(|(term, &c)| {
            let h = fnv1a(term.as_bytes());
            let idx = (h % self.dim as u64) as u32;
            let sign = if self.signed && (h >> 63) == 1 {
                -1.0
            } else {
                1.0
            };
            (idx, sign * c as f32)
        });
        SparseVector::from_pairs(pairs).l2_normalized()
    }

    /// Vectorizes a raw term iterator.
    pub fn vectorize_terms<I>(&self, terms: I) -> SparseVector
    where
        I: IntoIterator<Item = String>,
    {
        self.vectorize(&crate::vocab::count_terms(terms))
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ngram::char_ngrams_up_to;
    use crate::vocab::count_terms;

    fn counts(text: &str) -> HashMap<String, u32> {
        count_terms(char_ngrams_up_to(text, 3))
    }

    #[test]
    fn deterministic() {
        let v = HashingVectorizer::new(1 << 14, true);
        let a = v.vectorize(&counts("the same text every time"));
        let b = v.vectorize(&counts("the same text every time"));
        assert_eq!(a, b);
    }

    #[test]
    fn unit_norm() {
        let v = HashingVectorizer::new(1 << 12, true);
        let x = v.vectorize(&counts("some arbitrary content here"));
        assert!((x.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn indices_within_dim() {
        let v = HashingVectorizer::new(100, true);
        let x = v.vectorize(&counts("lots of grams to hash into a tiny space"));
        for (i, _) in x.iter() {
            assert!(i < 100);
        }
    }

    #[test]
    fn approximates_exact_similarity_ordering() {
        // Hashed cosine should rank a near-duplicate above an unrelated
        // text, like the exact representation does.
        let v = HashingVectorizer::new(1 << 15, true);
        let base = v.vectorize(&counts(
            "the stealth shipping was excellent and arrived early as promised",
        ));
        let near = v.vectorize(&counts(
            "the stealth shipping was excellent and arrived super early as promised",
        ));
        let far = v.vectorize(&counts(
            "kernel panics happen whenever the driver touches unmapped memory",
        ));
        assert!(base.cosine(&near) > base.cosine(&far) + 0.2);
    }

    #[test]
    fn signed_hashing_allows_negative_values() {
        let v = HashingVectorizer::new(1 << 10, true);
        let x = v.vectorize(&counts(
            "many different grams produce both signs eventually",
        ));
        let has_negative = x.iter().any(|(_, val)| val < 0.0);
        let has_positive = x.iter().any(|(_, val)| val > 0.0);
        assert!(has_negative && has_positive);
    }

    #[test]
    fn unsigned_hashing_nonnegative() {
        let v = HashingVectorizer::new(1 << 10, false);
        let x = v.vectorize(&counts("many different grams all positive"));
        assert!(x.iter().all(|(_, val)| val >= 0.0));
    }

    #[test]
    fn vectorize_terms_matches_vectorize() {
        let v = HashingVectorizer::new(512, true);
        let terms: Vec<String> = ["a", "b", "a", "c"].map(String::from).to_vec();
        let via_counts = v.vectorize(&count_terms(terms.clone()));
        let via_terms = v.vectorize_terms(terms);
        assert_eq!(via_counts, via_terms);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        HashingVectorizer::new(0, true);
    }
}
