//! Word and character n-gram extraction.
//!
//! The paper uses word n-grams of length 1–3 over the lemmatized token
//! stream and character n-grams of length 1–5 over the polished text
//! (§IV-A). The standard baseline it compares against uses character
//! *free-space* 4-grams — n-grams computed after removing all whitespace —
//! which [`char_ngrams_free_space`] provides.

/// Iterates the word `n`-grams of a token sequence, joining tokens with a
/// single space.
///
/// ```
/// use darklight_features::ngram::word_ngrams;
/// let tokens = ["the", "dark", "web"].map(String::from);
/// let grams: Vec<String> = word_ngrams(&tokens, 2).collect();
/// assert_eq!(grams, ["the dark", "dark web"]);
/// ```
pub fn word_ngrams(tokens: &[String], n: usize) -> impl Iterator<Item = String> + '_ {
    assert!(n >= 1, "n-gram length must be at least 1");
    tokens.windows(n).map(|w| w.join(" "))
}

/// Iterates all word n-grams for every length in `1..=max_n`.
pub fn word_ngrams_up_to(tokens: &[String], max_n: usize) -> impl Iterator<Item = String> + '_ {
    (1..=max_n).flat_map(move |n| word_ngrams(tokens, n))
}

/// Iterates the character `n`-grams of `text` (as `char` windows, so
/// multi-byte characters count as one position). Whitespace runs are
/// collapsed to a single space so formatting does not leak into the grams.
///
/// ```
/// use darklight_features::ngram::char_ngrams;
/// let grams: Vec<String> = char_ngrams("ab  cd", 2).collect();
/// assert_eq!(grams, ["ab", "b ", " c", "cd"]);
/// ```
pub fn char_ngrams(text: &str, n: usize) -> impl Iterator<Item = String> {
    assert!(n >= 1, "n-gram length must be at least 1");
    let chars = collapse_ws_chars(text);
    windows_owned(chars, n)
}

/// Iterates all character n-grams for every length in `1..=max_n`.
pub fn char_ngrams_up_to(text: &str, max_n: usize) -> impl Iterator<Item = String> {
    let chars = collapse_ws_chars(text);
    (1..=max_n).flat_map(move |n| windows_owned(chars.clone(), n))
}

/// Character n-grams with *all whitespace removed first* — the "char free
/// space 4-grams" of the paper's standard baseline (Layton et al.).
///
/// ```
/// use darklight_features::ngram::char_ngrams_free_space;
/// let grams: Vec<String> = char_ngrams_free_space("to do", 4).collect();
/// assert_eq!(grams, ["todo"]);
/// ```
pub fn char_ngrams_free_space(text: &str, n: usize) -> impl Iterator<Item = String> {
    assert!(n >= 1, "n-gram length must be at least 1");
    let chars: Vec<char> = text.chars().filter(|c| !c.is_whitespace()).collect();
    windows_owned(chars, n)
}

fn collapse_ws_chars(text: &str) -> Vec<char> {
    let mut out = Vec::with_capacity(text.len());
    let mut last_ws = true;
    for c in text.chars() {
        if c.is_whitespace() {
            if !last_ws {
                out.push(' ');
            }
            last_ws = true;
        } else {
            out.push(c);
            last_ws = false;
        }
    }
    while out.last() == Some(&' ') {
        out.pop();
    }
    out
}

fn windows_owned(chars: Vec<char>, n: usize) -> impl Iterator<Item = String> {
    let count = chars.len().saturating_sub(n.saturating_sub(1));
    (0..count).map(move |i| chars[i..i + n].iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unigrams_are_tokens() {
        let t = toks(&["a", "b", "c"]);
        let grams: Vec<String> = word_ngrams(&t, 1).collect();
        assert_eq!(grams, ["a", "b", "c"]);
    }

    #[test]
    fn trigrams() {
        let t = toks(&["i", "love", "dark", "webs"]);
        let grams: Vec<String> = word_ngrams(&t, 3).collect();
        assert_eq!(grams, ["i love dark", "love dark webs"]);
    }

    #[test]
    fn ngram_longer_than_input_is_empty() {
        let t = toks(&["only", "two"]);
        assert_eq!(word_ngrams(&t, 3).count(), 0);
        assert_eq!(char_ngrams("ab", 5).count(), 0);
    }

    #[test]
    fn word_ngrams_up_to_counts() {
        let t = toks(&["a", "b", "c", "d"]);
        // 4 unigrams + 3 bigrams + 2 trigrams.
        assert_eq!(word_ngrams_up_to(&t, 3).count(), 9);
    }

    #[test]
    fn char_ngrams_collapse_whitespace() {
        let grams: Vec<String> = char_ngrams("a\t\nb", 3).collect();
        assert_eq!(grams, ["a b"]);
    }

    #[test]
    fn char_ngrams_handle_unicode() {
        let grams: Vec<String> = char_ngrams("héé", 2).collect();
        assert_eq!(grams, ["hé", "éé"]);
    }

    #[test]
    fn free_space_removes_all_whitespace() {
        let grams: Vec<String> = char_ngrams_free_space("a b\tc\nd e", 4).collect();
        assert_eq!(grams, ["abcd", "bcde"]);
    }

    #[test]
    fn char_ngrams_up_to_counts() {
        // "abc": 3 + 2 + 1 = 6 grams for max_n = 3.
        assert_eq!(char_ngrams_up_to("abc", 3).count(), 6);
    }

    #[test]
    #[should_panic(expected = "n-gram length must be at least 1")]
    fn zero_length_rejected() {
        let _ = char_ngrams("abc", 0).count();
    }

    #[test]
    fn leading_trailing_ws_trimmed() {
        let grams: Vec<String> = char_ngrams("  ab  ", 2).collect();
        assert_eq!(grams, ["ab"]);
    }
}
