//! Corpus-frequency counting and top-N vocabulary selection.
//!
//! The paper orders the n-grams by their frequency across the dataset
//! and selects the top N features (§IV-A). [`VocabBuilder`] accumulates
//! per-document term counts and document frequencies; [`Vocabulary`] is the
//! frozen term → dense-index map used during vectorization.

use std::collections::HashMap;

/// Accumulates term statistics over a corpus.
#[derive(Debug, Clone, Default)]
pub struct VocabBuilder {
    /// term → (total occurrences, number of documents containing it).
    stats: HashMap<String, (u64, u32)>,
    docs: u32,
}

impl VocabBuilder {
    /// Creates an empty builder.
    pub fn new() -> VocabBuilder {
        VocabBuilder::default()
    }

    /// Adds one document, given its term counts.
    pub fn add_doc_counts(&mut self, counts: &HashMap<String, u32>) {
        self.docs += 1;
        for (term, &c) in counts {
            let entry = self.stats.entry(term.clone()).or_insert((0, 0));
            entry.0 += c as u64;
            entry.1 += 1;
        }
    }

    /// Adds one document from a raw term iterator (counting internally).
    pub fn add_doc_terms<I: IntoIterator<Item = String>>(&mut self, terms: I) {
        let mut counts: HashMap<String, u32> = HashMap::new();
        for t in terms {
            *counts.entry(t).or_insert(0) += 1;
        }
        self.add_doc_counts(&counts);
    }

    /// Absorbs another builder's accumulated statistics, as if its
    /// documents had been added to `self` directly. Term totals, document
    /// frequencies, and the document count all sum, so folding any
    /// partition of a corpus — in any order — yields a builder whose
    /// [`select_top`](VocabBuilder::select_top) output is identical to a
    /// single serial pass: selection ranks by (total, term) only, and
    /// addition is commutative. This is the reduce step of the parallel
    /// fit in `darklight-features::pipeline`.
    pub fn merge(&mut self, other: VocabBuilder) {
        self.docs += other.docs;
        for (term, (total, df)) in other.stats {
            let entry = self.stats.entry(term).or_insert((0, 0));
            entry.0 += total;
            entry.1 += df;
        }
    }

    /// Number of documents seen.
    pub fn num_docs(&self) -> u32 {
        self.docs
    }

    /// Number of distinct terms seen.
    pub fn num_terms(&self) -> usize {
        self.stats.len()
    }

    /// Freezes the top `n` terms by total corpus frequency (ties broken
    /// lexicographically for determinism) into a [`Vocabulary`]. Document
    /// frequencies are carried along for IDF weighting.
    pub fn select_top(&self, n: usize) -> Vocabulary {
        let mut items: Vec<(&String, u64, u32)> = self
            .stats
            .iter()
            .map(|(t, &(total, df))| (t, total, df))
            .collect();
        items.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        items.truncate(n);
        let mut index = HashMap::with_capacity(items.len());
        let mut doc_freq = Vec::with_capacity(items.len());
        for (i, (term, _, df)) in items.into_iter().enumerate() {
            index.insert(term.clone(), i as u32);
            doc_freq.push(df);
        }
        Vocabulary {
            index,
            doc_freq,
            num_docs: self.docs,
        }
    }
}

/// A frozen term → dense-index map with document frequencies.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    index: HashMap<String, u32>,
    doc_freq: Vec<u32>,
    num_docs: u32,
}

impl Vocabulary {
    /// Rebuilds a vocabulary from its frozen parts: `terms` in dense-index
    /// order (term `i` maps to index `i`), the matching per-term document
    /// frequencies, and the corpus document count. This is the inverse of
    /// serializing [`iter`](Vocabulary::iter) sorted by index — artifact
    /// deserialization uses it to restore a fitted vocabulary bit-exactly.
    ///
    /// Returns `None` when the two slices disagree in length or a term is
    /// duplicated (a corrupt or hand-edited artifact, not a valid freeze).
    pub fn from_parts(terms: Vec<String>, doc_freq: Vec<u32>, num_docs: u32) -> Option<Vocabulary> {
        if terms.len() != doc_freq.len() {
            return None;
        }
        let mut index = HashMap::with_capacity(terms.len());
        for (i, term) in terms.into_iter().enumerate() {
            if index.insert(term, i as u32).is_some() {
                return None;
            }
        }
        Some(Vocabulary {
            index,
            doc_freq,
            num_docs,
        })
    }

    /// Number of terms in the vocabulary.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no terms were selected.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The dense index of `term`, if selected.
    pub fn index_of(&self, term: &str) -> Option<u32> {
        self.index.get(term).copied()
    }

    /// Document frequency of the term at dense index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn doc_freq(&self, i: u32) -> u32 {
        self.doc_freq[i as usize]
    }

    /// Number of documents the vocabulary was fitted on.
    pub fn num_docs(&self) -> u32 {
        self.num_docs
    }

    /// Iterates `(term, index)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> + '_ {
        self.index.iter().map(|(t, &i)| (t.as_str(), i))
    }
}

impl darklight_govern::EstimateBytes for Vocabulary {
    fn estimate_bytes(&self) -> u64 {
        // Term payloads plus a flat per-entry charge (String header, u32
        // index, bucket overhead) and the doc-frequency array. Summation
        // is order-independent, so the estimate stays deterministic.
        self.index.keys().map(|t| t.len() as u64 + 48).sum::<u64>()
            + (self.doc_freq.len() as u64) * 4
            + 64
    }
}

/// Counts terms from an iterator into a map — the per-document first step.
pub fn count_terms<I: IntoIterator<Item = String>>(terms: I) -> HashMap<String, u32> {
    let mut counts = HashMap::new();
    for t in terms {
        *counts.entry(t).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(terms: &[&str]) -> HashMap<String, u32> {
        count_terms(terms.iter().map(|s| s.to_string()))
    }

    #[test]
    fn counting() {
        let c = doc(&["a", "b", "a", "a"]);
        assert_eq!(c["a"], 3);
        assert_eq!(c["b"], 1);
    }

    #[test]
    fn top_n_by_corpus_frequency() {
        let mut b = VocabBuilder::new();
        b.add_doc_counts(&doc(&["x", "x", "y"]));
        b.add_doc_counts(&doc(&["x", "y", "z"]));
        assert_eq!(b.num_docs(), 2);
        assert_eq!(b.num_terms(), 3);
        let v = b.select_top(2);
        assert_eq!(v.len(), 2);
        // x appears 3 times, y twice, z once.
        assert_eq!(v.index_of("x"), Some(0));
        assert_eq!(v.index_of("y"), Some(1));
        assert_eq!(v.index_of("z"), None);
    }

    #[test]
    fn ties_broken_lexicographically() {
        let mut b = VocabBuilder::new();
        b.add_doc_counts(&doc(&["beta", "alpha"]));
        let v = b.select_top(2);
        assert_eq!(v.index_of("alpha"), Some(0));
        assert_eq!(v.index_of("beta"), Some(1));
    }

    #[test]
    fn doc_freq_tracked() {
        let mut b = VocabBuilder::new();
        b.add_doc_counts(&doc(&["common", "rare"]));
        b.add_doc_counts(&doc(&["common"]));
        b.add_doc_counts(&doc(&["common"]));
        let v = b.select_top(10);
        let common = v.index_of("common").unwrap();
        let rare = v.index_of("rare").unwrap();
        assert_eq!(v.doc_freq(common), 3);
        assert_eq!(v.doc_freq(rare), 1);
        assert_eq!(v.num_docs(), 3);
    }

    #[test]
    fn merge_equals_serial_accumulation() {
        let docs = [
            doc(&["x", "x", "y"]),
            doc(&["x", "y", "z"]),
            doc(&["z", "z", "w"]),
        ];
        let mut serial = VocabBuilder::new();
        for d in &docs {
            serial.add_doc_counts(d);
        }
        // Partition the docs 2 + 1 and merge the partial builders.
        let mut left = VocabBuilder::new();
        left.add_doc_counts(&docs[0]);
        left.add_doc_counts(&docs[1]);
        let mut right = VocabBuilder::new();
        right.add_doc_counts(&docs[2]);
        let mut merged = VocabBuilder::new();
        merged.merge(left);
        merged.merge(right);
        assert_eq!(merged.num_docs(), serial.num_docs());
        assert_eq!(merged.num_terms(), serial.num_terms());
        let a = serial.select_top(10);
        let b = merged.select_top(10);
        for (term, i) in a.iter() {
            assert_eq!(b.index_of(term), Some(i), "term {term:?}");
            assert_eq!(b.doc_freq(i), a.doc_freq(i));
        }
    }

    #[test]
    fn select_more_than_available() {
        let mut b = VocabBuilder::new();
        b.add_doc_counts(&doc(&["only"]));
        let v = b.select_top(100);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn empty_builder_gives_empty_vocab() {
        let v = VocabBuilder::new().select_top(5);
        assert!(v.is_empty());
        assert_eq!(v.num_docs(), 0);
    }

    #[test]
    fn add_doc_terms_counts_internally() {
        let mut b = VocabBuilder::new();
        b.add_doc_terms(["a", "a", "b"].map(String::from));
        let v = b.select_top(2);
        assert_eq!(v.index_of("a"), Some(0));
        assert_eq!(v.doc_freq(0), 1);
    }

    #[test]
    fn from_parts_round_trips_a_selected_vocab() {
        let mut b = VocabBuilder::new();
        b.add_doc_counts(&doc(&["x", "x", "y"]));
        b.add_doc_counts(&doc(&["x", "z"]));
        let v = b.select_top(3);
        // Serialize: terms sorted by dense index, plus doc freqs.
        let mut pairs: Vec<(String, u32)> = v.iter().map(|(t, i)| (t.to_string(), i)).collect();
        pairs.sort_by_key(|&(_, i)| i);
        let terms: Vec<String> = pairs.iter().map(|(t, _)| t.clone()).collect();
        let freqs: Vec<u32> = pairs.iter().map(|&(_, i)| v.doc_freq(i)).collect();
        let back = Vocabulary::from_parts(terms, freqs, v.num_docs()).unwrap();
        assert_eq!(back.len(), v.len());
        assert_eq!(back.num_docs(), v.num_docs());
        for (term, i) in v.iter() {
            assert_eq!(back.index_of(term), Some(i));
            assert_eq!(back.doc_freq(i), v.doc_freq(i));
        }
    }

    #[test]
    fn from_parts_rejects_malformed_input() {
        // Length mismatch between terms and doc frequencies.
        assert!(Vocabulary::from_parts(vec!["a".into()], vec![1, 2], 2).is_none());
        // Duplicate term.
        assert!(Vocabulary::from_parts(vec!["a".into(), "a".into()], vec![1, 1], 2).is_none());
    }

    #[test]
    fn iter_covers_all_terms() {
        let mut b = VocabBuilder::new();
        b.add_doc_counts(&doc(&["p", "q", "r"]));
        let v = b.select_top(3);
        let mut seen: Vec<&str> = v.iter().map(|(t, _)| t).collect();
        seen.sort();
        assert_eq!(seen, ["p", "q", "r"]);
    }
}
