//! CLI for the workspace static-analysis pass.
//!
//! Exit codes: 0 = clean, 1 = unsuppressed findings, 2 = usage or I/O
//! error (matching the darklight CLI's convention).

use std::path::PathBuf;
use std::process::ExitCode;

use darklight_audit::driver;

const USAGE: &str = "\
darklight-audit — workspace static analysis

USAGE:
    darklight-audit check [--json] [--root <path>]
    darklight-audit rules

COMMANDS:
    check    Audit every workspace .rs file; nonzero exit on findings
    rules    List the rule catalog

OPTIONS:
    --json          Machine-readable findings (stable key order)
    --root <path>   Workspace root (default: nearest [workspace] above cwd)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            print!("{}", driver::rule_listing());
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("error: --root requires a path\n");
                    eprint!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown argument {other:?}\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| driver::find_workspace_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("error: no [workspace] Cargo.toml above the current directory; use --root");
            return ExitCode::from(2);
        }
    };

    let report = match driver::run(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: audit walk failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.unsuppressed().next().is_some() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
