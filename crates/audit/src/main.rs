//! CLI for the workspace static-analysis pass.
//!
//! Exit codes: 0 = clean, 1 = unsuppressed findings, 2 = usage or I/O
//! error (matching the darklight CLI's convention; pinned by
//! `tests/cli_exit.rs`).

use std::path::PathBuf;
use std::process::ExitCode;

use darklight_audit::driver;

/// Output renderings for `check`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Github,
}

/// The usage text, with the rule catalog appended dynamically so the
/// help can never drift from the code the way a hand-maintained list
/// would.
fn usage() -> String {
    format!(
        "\
darklight-audit — workspace static analysis

USAGE:
    darklight-audit check [--format <human|json|github>] [--json] [--root <path>]
    darklight-audit rules

COMMANDS:
    check    Audit every workspace .rs file; nonzero exit on findings
    rules    List the rule catalog

OPTIONS:
    --format <fmt>  Output: human (default), json (stable key order),
                    or github (::error annotations for CI)
    --json          Shorthand for --format json
    --root <path>   Workspace root (default: nearest [workspace] above cwd)

RULES:
{}",
        driver::rule_listing()
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            print!("{}", driver::rule_listing());
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{}", usage());
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut format = Format::Human;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--format" => match it.next().map(String::as_str) {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                Some(other) => {
                    eprintln!("error: unknown format {other:?} (human, json, github)\n");
                    eprint!("{}", usage());
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("error: --format requires a value\n");
                    eprint!("{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("error: --root requires a path\n");
                    eprint!("{}", usage());
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown argument {other:?}\n");
                eprint!("{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| driver::find_workspace_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("error: no [workspace] Cargo.toml above the current directory; use --root");
            return ExitCode::from(2);
        }
    };

    let report = match driver::run(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: audit walk failed: {e}");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Human => print!("{}", report.render_human()),
        Format::Json => print!("{}", report.render_json()),
        Format::Github => print!("{}", report.render_github()),
    }
    if report.unsuppressed().next().is_some() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
