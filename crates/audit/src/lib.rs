//! # darklight-audit — repo-native static analysis
//!
//! PRs 1–3 established the workspace's load-bearing invariants:
//! byte-identical serial/parallel parity, NaN-tolerant total orders,
//! panic isolation confined to `darklight-par`, stable checkpoint
//! fingerprints, and a golden metrics schema. Until now each was
//! enforced only by tests and reviewer vigilance — one new
//! `partial_cmp().unwrap()` or a `HashMap` iterating into a fingerprint
//! silently reintroduces the exact bugs the seed shipped with.
//!
//! This crate machine-checks them. It is a dependency-free (no `syn`,
//! no crates.io) static-analysis driver: a comment/string-aware lexer
//! ([`lexer::Scrubbed`]) plus a pluggable catalog of repo-specific
//! rules ([`rules::catalog`]), run over every `.rs` file in the
//! workspace by [`driver::run`]. Findings are span-accurate, suppress
//! via `// audit:allow(rule-id) -- reason` (reason mandatory), and any
//! unsuppressed finding fails the build:
//!
//! ```text
//! cargo run -p darklight-audit -- check          # human output
//! cargo run -p darklight-audit -- check --json   # CI output
//! cargo run -p darklight-audit -- rules          # the catalog
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod lexer;
pub mod metric_registry;
pub mod rules;

pub use driver::{check_source, run, Finding, Report};
