//! # darklight-audit — repo-native static analysis
//!
//! PRs 1–3 established the workspace's load-bearing invariants:
//! byte-identical serial/parallel parity, NaN-tolerant total orders,
//! panic isolation confined to `darklight-par`, stable checkpoint
//! fingerprints, and a golden metrics schema. Until now each was
//! enforced only by tests and reviewer vigilance — one new
//! `partial_cmp().unwrap()` or a `HashMap` iterating into a fingerprint
//! silently reintroduces the exact bugs the seed shipped with.
//!
//! This crate machine-checks them. It is a dependency-free (no `syn`,
//! no crates.io) two-phase static analyzer. Phase 1 is per-file: a
//! comment/string-aware lexer ([`lexer::Scrubbed`]), a brace-matched
//! item extractor ([`items::extract_items`]), and the lexical rule
//! catalog ([`rules::catalog`]). Phase 2 is cross-file: the extracted
//! items are assembled into a workspace item graph
//! ([`graph::ItemGraph`] — who defines what, which crate references
//! which, which types get which trait impls) and the graph rules
//! ([`graph_rules::catalog`]) enforce the invariants no single file can
//! witness: crate layering, `EstimateBytes` coverage of resident
//! state, deadline cooperation in governed stages, and fingerprint
//! purity. Findings from both phases are span-accurate, suppress via
//! `// audit:allow(rule-id) -- reason` (reason mandatory, and stale
//! allows are themselves findings), and any unsuppressed finding fails
//! the build:
//!
//! ```text
//! cargo run -p darklight-audit -- check                  # human output
//! cargo run -p darklight-audit -- check --format json    # CI output
//! cargo run -p darklight-audit -- check --format github  # PR annotations
//! cargo run -p darklight-audit -- rules                  # the catalog
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod graph;
pub mod graph_rules;
pub mod items;
pub mod lexer;
pub mod metric_registry;
pub mod rules;

pub use driver::{check_source, check_sources, run, Finding, Report};
