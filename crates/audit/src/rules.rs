//! The rule catalog.
//!
//! Each rule is a [`Rule`] impl with a stable id, a path-based
//! applicability gate, and a lexical check over a [`Scrubbed`] file.
//! Rules report *raw* findings (byte offset + message); the driver
//! resolves line/column, drops findings in test code for rules that only
//! police production paths, and applies `audit:allow` suppressions.

use crate::lexer::Scrubbed;
use crate::metric_registry::is_registered;

/// A rule violation before suppression/test-code filtering.
#[derive(Debug)]
pub struct RawFinding {
    /// Byte offset of the offending token.
    pub offset: usize,
    /// Human explanation, including how to fix or annotate.
    pub message: String,
}

/// Everything a rule can see about one file.
#[derive(Debug)]
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    pub rel_path: &'a str,
    /// Scrubbed view of the source.
    pub scrubbed: &'a Scrubbed,
    /// Whether the whole file is test code (`tests/`, `benches/`).
    pub file_is_test: bool,
}

/// One static-analysis rule.
pub trait Rule {
    /// Stable kebab-case id, used in output and `audit:allow(...)`.
    fn id(&self) -> &'static str;
    /// One-line description for `darklight-audit rules`.
    fn description(&self) -> &'static str;
    /// Whether findings inside `#[cfg(test)]` spans (and test files) are
    /// ignored. Defaults to true: tests may unwrap, spawn, and clock.
    fn skip_test_code(&self) -> bool {
        true
    }
    /// Path-level gate: whether the rule runs on this file at all.
    fn applies(&self, ctx: &FileCtx) -> bool;
    /// Scans the file, pushing raw findings.
    fn check(&self, ctx: &FileCtx, out: &mut Vec<RawFinding>);
}

/// The full catalog, in reporting order.
pub fn catalog() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoNakedUnwrap),
        Box::new(NanSafeOrdering),
        Box::new(NoAmbientTimeOrRand),
        Box::new(DeterministicIteration),
        Box::new(SpawnThroughPar),
        Box::new(MetricNameRegistry),
    ]
}

fn push_matches(
    ctx: &FileCtx,
    out: &mut Vec<RawFinding>,
    patterns: &[&str],
    message: impl Fn(&str) -> String,
) {
    let mut matches: Vec<(usize, usize, &str)> = Vec::new();
    for pat in patterns {
        for offset in ctx.scrubbed.find_all(pat) {
            matches.push((offset, offset + pat.len(), pat));
        }
    }
    matches.sort_by_key(|&(start, end, _)| (start, std::cmp::Reverse(end)));
    // Overlapping patterns (`std::thread` inside `std::thread::spawn`)
    // must not double-report one site; keep the earliest/longest match.
    let mut covered_to = 0usize;
    for (start, end, pat) in matches {
        if start < covered_to {
            continue;
        }
        covered_to = end;
        out.push(RawFinding {
            offset: start,
            message: message(pat),
        });
    }
}

/// `no-naked-unwrap`: `.unwrap()` / `.expect(...)` are forbidden in the
/// attribution hot paths (`crates/core`, `crates/features`). A panic
/// there kills a worker mid-batch; PR 3's failure model only isolates
/// panics at designated boundaries.
struct NoNakedUnwrap;

impl Rule for NoNakedUnwrap {
    fn id(&self) -> &'static str {
        "no-naked-unwrap"
    }
    fn description(&self) -> &'static str {
        "unwrap()/expect() forbidden in crates/core and crates/features production code"
    }
    fn applies(&self, ctx: &FileCtx) -> bool {
        ctx.rel_path.starts_with("crates/core/src/")
            || ctx.rel_path.starts_with("crates/features/src/")
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<RawFinding>) {
        push_matches(ctx, out, &[".unwrap()", ".expect("], |pat| {
            format!(
                "naked `{}` in a hot path: return a typed error, restructure to make the \
                 failure impossible, or annotate with `// audit:allow(no-naked-unwrap) -- \
                 <why the invariant holds>`",
                pat.trim_end_matches('(')
            )
        });
    }
}

/// `nan-safe-ordering`: every float comparison must go through the
/// total orders in `darklight-order`; a stray `partial_cmp` panics (or
/// silently misorders) the first time a NaN score appears.
struct NanSafeOrdering;

impl Rule for NanSafeOrdering {
    fn id(&self) -> &'static str {
        "nan-safe-ordering"
    }
    fn description(&self) -> &'static str {
        "partial_cmp outside the blessed darklight-order helpers"
    }
    fn applies(&self, ctx: &FileCtx) -> bool {
        !ctx.rel_path.starts_with("crates/order/src/")
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<RawFinding>) {
        push_matches(ctx, out, &["partial_cmp"], |_| {
            "`partial_cmp` is not NaN-safe: use `darklight_order::cmp_f64_desc` / \
             `cmp_f64_asc` / `cmp_desc_indexed` (the only blessed total orders)"
                .to_string()
        });
    }
}

/// `no-ambient-time-or-rand`: reading the clock or an ambient RNG
/// anywhere but the observability timers and the bench harness breaks
/// reproducibility — byte-identical reruns are the whole point.
struct NoAmbientTimeOrRand;

impl Rule for NoAmbientTimeOrRand {
    fn id(&self) -> &'static str {
        "no-ambient-time-or-rand"
    }
    fn description(&self) -> &'static str {
        "SystemTime::now/Instant::now/elapsed()/ambient RNG outside crates/obs and crates/bench"
    }
    fn applies(&self, ctx: &FileCtx) -> bool {
        !ctx.rel_path.starts_with("crates/obs/src/") && !ctx.rel_path.starts_with("crates/bench/")
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<RawFinding>) {
        push_matches(
            ctx,
            out,
            &[
                "SystemTime::now",
                "Instant::now",
                ".elapsed(",
                "thread_rng",
                "rand::random",
            ],
            |pat| {
                format!(
                    "ambient `{pat}` makes runs irreproducible: thread time through \
                     `darklight-obs` timers, seed RNGs explicitly, or annotate with \
                     `// audit:allow(no-ambient-time-or-rand) -- <why output cannot depend on it>`"
                )
            },
        );
    }
}

/// `deterministic-iteration`: `HashMap`/`HashSet` iteration order is
/// unspecified; in snapshot serialization or fingerprint code it leaks
/// straight into persisted bytes. Designated files and any function with
/// `fingerprint` in its name must use `BTreeMap`/`BTreeSet` or sort.
struct DeterministicIteration;

/// Files whose entire contents feed persisted, order-sensitive bytes.
const FINGERPRINT_FILES: &[&str] = &[
    "crates/core/src/checkpoint.rs",
    "crates/obs/src/json.rs",
    "crates/obs/src/registry.rs",
];

impl Rule for DeterministicIteration {
    fn id(&self) -> &'static str {
        "deterministic-iteration"
    }
    fn description(&self) -> &'static str {
        "HashMap/HashSet in snapshot or fingerprint code (use BTreeMap or sort)"
    }
    fn applies(&self, _ctx: &FileCtx) -> bool {
        true
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<RawFinding>) {
        let whole_file = FINGERPRINT_FILES.contains(&ctx.rel_path);
        let spans = if whole_file {
            vec![(0, ctx.scrubbed.text.len())]
        } else {
            fingerprint_fn_spans(ctx.scrubbed)
        };
        if spans.is_empty() {
            return;
        }
        for pat in ["HashMap", "HashSet"] {
            for offset in ctx.scrubbed.find_all(pat) {
                if spans.iter().any(|&(s, e)| offset >= s && offset < e) {
                    out.push(RawFinding {
                        offset,
                        message: format!(
                            "`{pat}` in snapshot/fingerprint code: iteration order is \
                             nondeterministic and leaks into persisted bytes — use \
                             BTreeMap/BTreeSet or sort before iterating"
                        ),
                    });
                }
            }
        }
    }
}

/// Byte spans of functions whose name contains `fingerprint`.
fn fingerprint_fn_spans(scrubbed: &Scrubbed) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let bytes = scrubbed.text.as_bytes();
    for start in scrubbed.find_all("fn ") {
        // Token boundary: `fn` must not be the tail of an identifier.
        if start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
            continue;
        }
        let name_start = start + 3;
        let name_end = scrubbed.text[name_start..]
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .map_or(bytes.len(), |n| name_start + n);
        if !scrubbed.text[name_start..name_end].contains("fingerprint") {
            continue;
        }
        // Span: from `fn` through the body's matching close brace.
        let mut depth = 0usize;
        let mut opened = false;
        let mut i = name_end;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    depth += 1;
                    opened = true;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        break;
                    }
                }
                b';' if !opened => break,
                _ => {}
            }
            i += 1;
        }
        spans.push((start, i.min(bytes.len())));
    }
    spans
}

/// `spawn-through-par`: all parallelism flows through `darklight-par`
/// (panic isolation, thread-count invariance, the one `--threads` knob).
/// Raw `std::thread` anywhere else forks the concurrency model.
struct SpawnThroughPar;

impl Rule for SpawnThroughPar {
    fn id(&self) -> &'static str {
        "spawn-through-par"
    }
    fn description(&self) -> &'static str {
        "std::thread use outside darklight-par"
    }
    fn applies(&self, ctx: &FileCtx) -> bool {
        !ctx.rel_path.starts_with("crates/par/src/")
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<RawFinding>) {
        push_matches(
            ctx,
            out,
            &["std::thread", "thread::spawn", "thread::scope"],
            |_| {
                "raw thread use outside darklight-par: route the work through \
                 `darklight_par::par_map`/`try_par_map` so panic isolation and \
                 thread-count invariance hold"
                    .to_string()
            },
        );
    }
}

/// `metric-name-registry`: every metric name recorded through the obs
/// handle must be a string literal found in
/// [`crate::metric_registry::METRIC_REGISTRY`]. Catches typos that would
/// silently fork a time series and drift from the golden schema test.
struct MetricNameRegistry;

impl Rule for MetricNameRegistry {
    fn id(&self) -> &'static str {
        "metric-name-registry"
    }
    fn description(&self) -> &'static str {
        "metric names must be literals listed in the central registry"
    }
    fn applies(&self, ctx: &FileCtx) -> bool {
        !ctx.rel_path.starts_with("crates/obs/src/") && !ctx.rel_path.starts_with("crates/audit/")
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<RawFinding>) {
        let bytes = ctx.scrubbed.text.as_bytes();
        for method in [".counter(", ".gauge(", ".timer(", ".histogram("] {
            for offset in ctx.scrubbed.find_all(method) {
                let mut p = offset + method.len();
                while p < bytes.len() && (bytes[p] as char).is_ascii_whitespace() {
                    p += 1;
                }
                match ctx.scrubbed.string_at(p) {
                    Some(lit) if is_registered(&lit.content) => {}
                    Some(lit) => out.push(RawFinding {
                        offset,
                        message: format!(
                            "metric name {:?} is not in the central registry \
                             (crates/audit/src/metric_registry.rs) — register it there \
                             and extend the golden schema in tests/metrics_parity.rs, \
                             or fix the typo",
                            lit.content
                        ),
                    }),
                    None => out.push(RawFinding {
                        offset,
                        message: "dynamically built metric name cannot be checked against \
                                  the registry: register every possible expansion and \
                                  annotate with `// audit:allow(metric-name-registry) -- \
                                  <how the name set is bounded>`"
                            .to_string(),
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_for(rel_path: &str, source: &str, rule_id: &str) -> Vec<RawFinding> {
        let scrubbed = Scrubbed::new(source);
        let ctx = FileCtx {
            rel_path,
            scrubbed: &scrubbed,
            file_is_test: false,
        };
        let mut out = Vec::new();
        for rule in catalog() {
            if rule.id() == rule_id && rule.applies(&ctx) {
                rule.check(&ctx, &mut out);
            }
        }
        out
    }

    #[test]
    fn unwrap_rule_scopes_to_core_and_features() {
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); z.unwrap_or(0); }";
        assert_eq!(
            findings_for("crates/core/src/a.rs", src, "no-naked-unwrap").len(),
            2,
            "unwrap_or must not count"
        );
        assert!(findings_for("crates/eval/src/a.rs", src, "no-naked-unwrap").is_empty());
    }

    #[test]
    fn ordering_rule_blesses_only_the_order_crate() {
        let src = "fn f() { a.partial_cmp(&b); }";
        assert_eq!(
            findings_for("crates/eval/src/a.rs", src, "nan-safe-ordering").len(),
            1
        );
        assert!(findings_for("crates/order/src/lib.rs", src, "nan-safe-ordering").is_empty());
    }

    #[test]
    fn iteration_rule_fires_in_fingerprint_fns_and_designated_files() {
        let in_fn = "fn run_fingerprint() { let m: HashMap<u32, u32> = HashMap::new(); }\n\
                     fn other() { let s: HashSet<u32> = HashSet::new(); }";
        let hits = findings_for("crates/core/src/batch.rs", in_fn, "deterministic-iteration");
        assert_eq!(hits.len(), 2, "both HashMap uses inside the fingerprint fn");
        let anywhere = "fn any() { let m: HashMap<u32, u32> = Default::default(); let _ = m; }";
        assert_eq!(
            findings_for(
                "crates/obs/src/json.rs",
                anywhere,
                "deterministic-iteration"
            )
            .len(),
            1
        );
        assert!(
            findings_for("crates/text/src/x.rs", anywhere, "deterministic-iteration").is_empty()
        );
    }

    #[test]
    fn metric_rule_checks_literals_and_flags_dynamics() {
        let good = "fn f(m: &M) { m.counter(\"linker.link\").incr(); }";
        assert!(findings_for("crates/core/src/a.rs", good, "metric-name-registry").is_empty());
        let typo = "fn f(m: &M) { m.counter(\"linker.lnik\").incr(); }";
        assert_eq!(
            findings_for("crates/core/src/a.rs", typo, "metric-name-registry").len(),
            1
        );
        let dynamic = "fn f(m: &M) { m.counter(&name).incr(); }";
        assert_eq!(
            findings_for("crates/core/src/a.rs", dynamic, "metric-name-registry").len(),
            1
        );
    }

    #[test]
    fn spawn_rule_dedupes_overlapping_patterns() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(
            findings_for("crates/core/src/a.rs", src, "spawn-through-par").len(),
            1
        );
    }
}
