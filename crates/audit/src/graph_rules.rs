//! Phase-2 rules over the workspace item graph.
//!
//! Unlike the lexical rules, which see one file at a time, graph rules
//! see every production file at once: who defines which type, which
//! crate references which, which functions call which. Each rule
//! reports `(file, offset)` pairs the driver resolves to line/column
//! and feeds through the same `audit:allow` suppression machinery as
//! the lexical catalog.
//!
//! Adding a graph rule: implement [`GraphRule`], add it to
//! [`catalog`], give it a firing and a passing fixture under
//! `tests/fixtures/graph/`, and document it in DESIGN.md §13.

use std::collections::{BTreeMap, VecDeque};

use crate::graph::{crate_refs, layer_of, FileView, ItemGraph};

/// A graph-rule violation before line/column resolution.
#[derive(Debug)]
pub struct GraphFinding {
    /// Index into the driver's file list.
    pub file_idx: usize,
    /// Byte offset of the offending token or definition.
    pub offset: usize,
    /// Human explanation, including how to fix or annotate.
    pub message: String,
}

/// One cross-file rule.
pub trait GraphRule {
    /// Stable kebab-case id, used in output and `audit:allow(...)`.
    fn id(&self) -> &'static str;
    /// One-line description for `darklight-audit rules`.
    fn description(&self) -> &'static str;
    /// Scans the graph, pushing raw findings.
    fn check(&self, files: &[FileView], graph: &ItemGraph, out: &mut Vec<GraphFinding>);
}

/// The graph-rule catalog, in reporting order. (`stale-suppression`,
/// the fifth member of the family, lives in the driver: it needs the
/// post-suppression match results the rules themselves never see.)
pub fn catalog() -> Vec<Box<dyn GraphRule>> {
    vec![
        Box::new(CrateLayering),
        Box::new(EstimateBytesCoverage),
        Box::new(DeadlineCooperation),
        Box::new(FingerprintPurity),
    ]
}

/// `crate-layering`: the dependency order in [`crate::graph::LAYERS`]
/// is law. A `darklight_*` reference from a crate at layer L to a crate
/// at layer ≥ L is an upward (or sideways) edge the build may tolerate
/// today but the architecture does not.
struct CrateLayering;

impl GraphRule for CrateLayering {
    fn id(&self) -> &'static str {
        "crate-layering"
    }
    fn description(&self) -> &'static str {
        "darklight_* references must point strictly down the pinned layer table"
    }
    fn check(&self, files: &[FileView], _graph: &ItemGraph, out: &mut Vec<GraphFinding>) {
        for file in files {
            let Some(own) = file.crate_name() else {
                continue;
            };
            if file.file_is_test {
                continue;
            }
            let Some(own_layer) = layer_of(own) else {
                out.push(GraphFinding {
                    file_idx: file.idx,
                    offset: 0,
                    message: format!(
                        "crate `{own}` is not in the layering table \
                         (crates/audit/src/graph.rs LAYERS) — add a row pinning its layer"
                    ),
                });
                continue;
            };
            for (offset, referenced) in crate_refs(file) {
                if referenced == own {
                    continue;
                }
                match layer_of(&referenced) {
                    None => out.push(GraphFinding {
                        file_idx: file.idx,
                        offset,
                        message: format!(
                            "reference to `darklight_{referenced}`, which is not in the \
                             layering table (crates/audit/src/graph.rs LAYERS) — add a row \
                             pinning its layer"
                        ),
                    }),
                    Some(ref_layer) if ref_layer >= own_layer => out.push(GraphFinding {
                        file_idx: file.idx,
                        offset,
                        message: format!(
                            "upward dependency: crate `{own}` (layer {own_layer}) references \
                             `darklight_{referenced}` (layer {ref_layer}); the layering table \
                             only admits strictly-downward edges — invert the dependency or \
                             move the shared code below both crates"
                        ),
                    }),
                    Some(_) => {}
                }
            }
        }
    }
}

/// `estimate-bytes-coverage`: every struct/enum holding per-record or
/// per-run resident state in `core`/`features` must implement
/// `EstimateBytes`, or govern's budget math silently under-counts it.
/// "Resident state" is the transitive field closure of the seed types.
struct EstimateBytesCoverage;

/// Roots of the resident-state closure: the per-record containers plus
/// the fitted feature space every round keeps alive.
const ESTIMATE_SEEDS: &[&str] = &["Dataset", "Record", "PreparedDoc", "FeatureSpace"];

/// Crates whose type definitions participate in the closure.
const ESTIMATE_CRATES: &[&str] = &["core", "features"];

impl GraphRule for EstimateBytesCoverage {
    fn id(&self) -> &'static str {
        "estimate-bytes-coverage"
    }
    fn description(&self) -> &'static str {
        "types reachable from per-record state in core/features must impl EstimateBytes"
    }
    fn check(&self, _files: &[FileView], graph: &ItemGraph, out: &mut Vec<GraphFinding>) {
        let in_domain = |name: &str| {
            graph
                .types
                .get(name)
                .is_some_and(|t| ESTIMATE_CRATES.contains(&t.crate_name.as_str()))
        };
        // BFS over field types, remembering how each type was reached so
        // the finding can show the path.
        let mut parent: BTreeMap<String, Option<String>> = BTreeMap::new();
        let mut queue: VecDeque<String> = VecDeque::new();
        for &seed in ESTIMATE_SEEDS {
            if in_domain(seed) {
                parent.insert(seed.to_string(), None);
                queue.push_back(seed.to_string());
            }
        }
        while let Some(name) = queue.pop_front() {
            for field_type in &graph.types[&name].field_types {
                if in_domain(field_type) && !parent.contains_key(field_type) {
                    parent.insert(field_type.clone(), Some(name.clone()));
                    queue.push_back(field_type.clone());
                }
            }
        }
        for name in parent.keys() {
            if graph
                .impls
                .contains(&("EstimateBytes".to_string(), name.clone()))
            {
                continue;
            }
            let mut path = vec![name.clone()];
            while let Some(Some(p)) = parent.get(path.last().map(String::as_str).unwrap_or("")) {
                path.push(p.clone());
            }
            path.reverse();
            let def = &graph.types[name];
            out.push(GraphFinding {
                file_idx: def.file_idx,
                offset: def.offset,
                message: format!(
                    "`{name}` holds resident state (reached via {}) but has no \
                     `impl EstimateBytes` — implement it so the memory governor can \
                     count this state, or annotate with \
                     `// audit:allow(estimate-bytes-coverage) -- <why its size is \
                     not budget-relevant>`",
                    path.join(" -> ")
                ),
            });
        }
    }
}

/// `deadline-cooperation`: the governed stages must stay interruptible.
/// Iterating work in `core::batch` / `core::twostage` through a bare
/// `par_map` or an unpolled `for … .chunks(…)` loop can overrun a
/// deadline by a whole stage.
struct DeadlineCooperation;

/// Files containing the governed stage loops.
const GOVERNED_FILES: &[&str] = &["crates/core/src/batch.rs", "crates/core/src/twostage.rs"];

/// Tokens that count as polling a deadline inside a loop body.
const POLL_TOKENS: &[&str] = &["is_expired(", "deadline.check("];

impl GraphRule for DeadlineCooperation {
    fn id(&self) -> &'static str {
        "deadline-cooperation"
    }
    fn description(&self) -> &'static str {
        "governed stage loops must use par_map_deadline/try_par_map or poll a Deadline"
    }
    fn check(&self, files: &[FileView], _graph: &ItemGraph, out: &mut Vec<GraphFinding>) {
        for file in files {
            if !GOVERNED_FILES.contains(&file.rel_path) || file.file_is_test {
                continue;
            }
            let text = &file.scrubbed.text;
            let bytes = text.as_bytes();
            for pattern in ["par_map(", "par_map_chunks("] {
                for offset in file.scrubbed.find_all(pattern) {
                    let bare = offset == 0
                        || !(bytes[offset - 1].is_ascii_alphanumeric()
                            || bytes[offset - 1] == b'_');
                    if !bare || file.in_test_span(offset) {
                        continue;
                    }
                    out.push(GraphFinding {
                        file_idx: file.idx,
                        offset,
                        message: format!(
                            "bare `{}` in a governed stage cannot be interrupted: use \
                             `par_map_deadline` (deadline-aware) or `try_par_map*` \
                             (panic-isolating) so the stage stays cooperative",
                            pattern.trim_end_matches('(')
                        ),
                    });
                }
            }
            for offset in file.scrubbed.find_all("for ") {
                let boundary = offset == 0
                    || !(bytes[offset - 1].is_ascii_alphanumeric() || bytes[offset - 1] == b'_');
                if !boundary || file.in_test_span(offset) {
                    continue;
                }
                let Some(open_rel) = text[offset..].find('{') else {
                    continue;
                };
                let open = offset + open_rel;
                if !text[offset..open].contains(".chunks(") {
                    continue;
                }
                let mut depth = 0usize;
                let mut close = open;
                while close < bytes.len() {
                    match bytes[close] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    close += 1;
                }
                let body = &text[open..close.min(bytes.len())];
                if !POLL_TOKENS.iter().any(|t| body.contains(t)) {
                    out.push(GraphFinding {
                        file_idx: file.idx,
                        offset,
                        message: "chunked loop in a governed stage never polls its deadline: \
                                  call `deadline.is_expired()` / `deadline.check(..)` inside \
                                  the loop, or route the work through `par_map_deadline`"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// `fingerprint-purity`: checkpoint fingerprints must be pure functions
/// of config + data. A fingerprint that reads metrics, the clock, the
/// environment, or the thread count forks resume identity across runs.
struct FingerprintPurity;

impl GraphRule for FingerprintPurity {
    fn id(&self) -> &'static str {
        "fingerprint-purity"
    }
    fn description(&self) -> &'static str {
        "*fingerprint* fns may not reach metrics, clock, env, or thread-count reads"
    }
    fn check(&self, _files: &[FileView], graph: &ItemGraph, out: &mut Vec<GraphFinding>) {
        // Fixpoint: a fn is impure if it has direct evidence or any
        // same-crate bare callee resolves (by name) to an impure fn.
        // `why[i]` holds the index of the callee that contaminated fn i
        // (or its own direct evidence).
        #[derive(Clone)]
        enum Why {
            Direct(String, &'static str),
            Via(usize),
        }
        let mut by_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, f) in graph.fns.iter().enumerate() {
            by_name
                .entry((f.crate_name.as_str(), f.name.as_str()))
                .or_default()
                .push(i);
        }
        let mut why: Vec<Option<Why>> = graph
            .fns
            .iter()
            .map(|f| {
                f.impure
                    .first()
                    .map(|(_, token, category)| Why::Direct(token.clone(), category))
            })
            .collect();
        loop {
            let mut changed = false;
            for (i, f) in graph.fns.iter().enumerate() {
                if why[i].is_some() {
                    continue;
                }
                let contaminated = f.callees.iter().find_map(|callee| {
                    by_name
                        .get(&(f.crate_name.as_str(), callee.as_str()))
                        .and_then(|idxs| idxs.iter().find(|&&j| why[j].is_some()))
                        .copied()
                });
                if let Some(j) = contaminated {
                    why[i] = Some(Why::Via(j));
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let describe = |mut i: usize| -> String {
            let mut chain = vec![graph.fns[i].name.clone()];
            loop {
                match &why[i] {
                    Some(Why::Via(j)) => {
                        chain.push(graph.fns[*j].name.clone());
                        i = *j;
                    }
                    Some(Why::Direct(token, category)) => {
                        return format!("{} -> `{token}` ({category})", chain.join(" -> "));
                    }
                    None => return chain.join(" -> "),
                }
            }
        };
        for (i, f) in graph.fns.iter().enumerate() {
            if !f.name.contains("fingerprint") || why[i].is_none() {
                continue;
            }
            out.push(GraphFinding {
                file_idx: f.file_idx,
                offset: f.offset,
                message: format!(
                    "fingerprint fn `{}` is impure: {} — fingerprints must be pure \
                     functions of config and data, or resume identity forks across runs",
                    f.name,
                    describe(i)
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract_items;
    use crate::lexer::Scrubbed;

    struct TestFile {
        rel_path: String,
        scrubbed: Scrubbed,
        items: Vec<crate::items::Item>,
        test_spans: Vec<(usize, usize)>,
    }

    fn analyze(sources: &[(&str, &str)]) -> (Vec<TestFile>, ItemGraph) {
        let files: Vec<TestFile> = sources
            .iter()
            .map(|(rel_path, src)| {
                let scrubbed = Scrubbed::new(src);
                let items = extract_items(&scrubbed);
                let test_spans = scrubbed.test_spans();
                TestFile {
                    rel_path: rel_path.to_string(),
                    scrubbed,
                    items,
                    test_spans,
                }
            })
            .collect();
        let views: Vec<FileView> = files
            .iter()
            .enumerate()
            .map(|(idx, f)| FileView {
                idx,
                rel_path: &f.rel_path,
                scrubbed: &f.scrubbed,
                items: &f.items,
                file_is_test: false,
                test_spans: &f.test_spans,
            })
            .collect();
        let graph = ItemGraph::build(&views);
        (files, graph)
    }

    fn run_rule(rule_id: &str, sources: &[(&str, &str)]) -> Vec<GraphFinding> {
        let (files, graph) = analyze(sources);
        let views: Vec<FileView> = files
            .iter()
            .enumerate()
            .map(|(idx, f)| FileView {
                idx,
                rel_path: &f.rel_path,
                scrubbed: &f.scrubbed,
                items: &f.items,
                file_is_test: false,
                test_spans: &f.test_spans,
            })
            .collect();
        let mut out = Vec::new();
        for rule in catalog() {
            if rule.id() == rule_id {
                rule.check(&views, &graph, &mut out);
            }
        }
        out
    }

    #[test]
    fn layering_flags_upward_and_unknown_edges() {
        let up = run_rule(
            "crate-layering",
            &[(
                "crates/par/src/lib.rs",
                "use darklight_core::batch::BatchConfig;\n",
            )],
        );
        assert_eq!(up.len(), 1);
        assert!(
            up[0].message.contains("upward dependency"),
            "{}",
            up[0].message
        );
        let down = run_rule(
            "crate-layering",
            &[("crates/par/src/lib.rs", "use darklight_obs::Metrics;\n")],
        );
        assert!(down.is_empty(), "{down:?}");
        let unknown = run_rule(
            "crate-layering",
            &[("crates/core/src/x.rs", "use darklight_mystery::Thing;\n")],
        );
        assert_eq!(unknown.len(), 1);
        assert!(unknown[0].message.contains("not in the layering table"));
    }

    #[test]
    fn estimate_bytes_reaches_through_fields() {
        let findings = run_rule(
            "estimate-bytes-coverage",
            &[(
                "crates/core/src/dataset.rs",
                "pub struct Record { side: SideCar }\n\
                 pub struct SideCar { n: u64 }\n\
                 impl EstimateBytes for Record { fn estimate_bytes(&self) -> u64 { 0 } }\n",
            )],
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`SideCar`"));
        assert!(findings[0].message.contains("Record -> SideCar"));
    }

    #[test]
    fn estimate_bytes_ignores_types_outside_core_and_features() {
        let findings = run_rule(
            "estimate-bytes-coverage",
            &[(
                "crates/corpus/src/model.rs",
                "pub struct Record { side: SideCar }\npub struct SideCar { n: u64 }\n",
            )],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn deadline_rule_wants_cooperative_loops() {
        let src = "fn round() {\n\
                   let a = darklight_par::par_map(&xs, t, f);\n\
                   let b = darklight_par::try_par_map(&xs, t, s, f);\n\
                   let c = darklight_par::par_map_deadline(&xs, t, d, f);\n\
                   for batch in pool.chunks(n) { process(batch); }\n\
                   for batch in pool.chunks(n) { if deadline.is_expired() { break; } }\n\
                   for x in items { plain(x); }\n\
                   }\n";
        let findings = run_rule("deadline-cooperation", &[("crates/core/src/batch.rs", src)]);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings
            .iter()
            .any(|f| f.message.contains("bare `par_map`")));
        assert!(findings.iter().any(|f| f.message.contains("never polls")));
        // The same source outside the governed files is out of scope.
        assert!(run_rule(
            "deadline-cooperation",
            &[("crates/core/src/attrib.rs", src)]
        )
        .is_empty());
    }

    #[test]
    fn purity_is_transitive_within_a_crate() {
        let findings = run_rule(
            "fingerprint-purity",
            &[(
                "crates/core/src/batch.rs",
                "fn run_fingerprint(x: u64) -> u64 { mix(x) }\n\
                 fn mix(x: u64) -> u64 { stamp(x) }\n\
                 fn stamp(x: u64) -> u64 { let t = Instant::now(); x }\n\
                 fn pure_fingerprint(x: u64) -> u64 { x ^ 7 }\n",
            )],
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0]
                .message
                .contains("run_fingerprint -> mix -> stamp -> `Instant::now` (clock read)"),
            "{}",
            findings[0].message
        );
    }

    #[test]
    fn purity_does_not_cross_crates_via_bare_names() {
        let findings = run_rule(
            "fingerprint-purity",
            &[
                (
                    "crates/core/src/a.rs",
                    "fn run_fingerprint(x: u64) -> u64 { mix(x) }\n",
                ),
                (
                    "crates/text/src/b.rs",
                    "fn mix(x: u64) -> u64 { let t = Instant::now(); x }\n",
                ),
            ],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
