//! Phase-1 item extraction: a brace-matched scan over a [`Scrubbed`]
//! file that recovers the top-level shape syn would give us — `fn`,
//! `struct`, `enum`, `impl`, and `use` items with byte spans — without
//! a parser dependency (the crate's charter: no `syn`, no crates.io).
//!
//! The extractor is deliberately lexical. It trusts the scrubber to
//! have blanked strings, comments, and char literals, so every brace,
//! paren, and keyword it sees is real code. Items nested inside other
//! items (methods in `impl` blocks, helper fns in fn bodies) are
//! extracted too — the graph rules need every function, not just the
//! file-scope ones. Items inside `#[cfg(test)]` spans are marked so
//! graph rules can skip test code the same way the lexical rules do.

use crate::lexer::Scrubbed;

/// What kind of item an [`Item`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A function (free, method, or nested).
    Fn,
    /// A struct (named-field, tuple, or unit).
    Struct,
    /// An enum.
    Enum,
    /// An `impl` block (inherent or trait).
    Impl,
    /// A `use` declaration.
    Use,
}

/// One extracted item.
#[derive(Debug, Clone)]
pub struct Item {
    /// Which kind of item this is.
    pub kind: ItemKind,
    /// The item's name: the fn/struct/enum identifier, the implemented
    /// *type* name for `impl`, or the full path text for `use`.
    pub name: String,
    /// For trait impls, the trait's final path segment
    /// (`darklight_govern::EstimateBytes` → `EstimateBytes`).
    pub trait_name: Option<String>,
    /// Byte offset of the introducing keyword (for span-accurate
    /// findings).
    pub offset: usize,
    /// Byte span of the body *between* the delimiters: brace body for
    /// fn/enum/impl/named-struct, paren body for tuple structs, `None`
    /// for unit structs and bodiless fns (trait method declarations).
    pub body: Option<(usize, usize)>,
    /// Whether the item sits inside a `#[cfg(test)]` span.
    pub in_test: bool,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets where `kw` appears as a standalone token.
fn keyword_positions(scrubbed: &Scrubbed, kw: &str) -> Vec<usize> {
    let bytes = scrubbed.text.as_bytes();
    scrubbed
        .find_all(kw)
        .into_iter()
        .filter(|&i| {
            let before_ok = i == 0 || !is_ident(bytes[i - 1]);
            let after = bytes.get(i + kw.len()).copied();
            let after_ok = after.is_none_or(|b| !is_ident(b));
            before_ok && after_ok
        })
        .collect()
}

/// Index just past the identifier starting at `i` (which may be empty).
fn ident_end(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    while j < bytes.len() && is_ident(bytes[j]) {
        j += 1;
    }
    j
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Index of the last non-whitespace byte before `i`, if any.
fn prev_non_ws(bytes: &[u8], i: usize) -> Option<u8> {
    bytes[..i]
        .iter()
        .rev()
        .copied()
        .find(|b| !b.is_ascii_whitespace())
}

/// With `bytes[open]` an opening delimiter, the index of its matching
/// closer (or `bytes.len()` on unbalanced input).
fn match_delim(bytes: &[u8], open: usize, open_b: u8, close_b: u8) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        if bytes[i] == open_b {
            depth += 1;
        } else if bytes[i] == close_b {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    bytes.len()
}

/// With `bytes[i] == b'<'`, the index just past the matching `>`.
/// A `>` preceded by `-` is an arrow (`Fn(u32) -> u64` inside bounds),
/// not a closer.
fn skip_generics(bytes: &[u8], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < bytes.len() {
        match bytes[j] {
            b'<' => depth += 1,
            b'>' if j > 0 && bytes[j - 1] == b'-' => {}
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    bytes.len()
}

/// Scans from `from` for the end of an item: a `{` at paren/bracket
/// depth 0 (brace-matched body) or a `;`. Tuple-struct field parens —
/// the *first* paren group at depth 0 — are remembered separately so
/// `struct S(A, B);` yields its field span while `struct S where F:
/// Fn(u32) { .. }` does not mistake the bound's parens for fields.
struct ItemEnd {
    /// Inside-brace span, when the item has a braced body.
    brace_body: Option<(usize, usize)>,
    /// Inside-paren span of the first depth-0 paren group.
    first_parens: Option<(usize, usize)>,
}

fn scan_item_end(bytes: &[u8], from: usize) -> ItemEnd {
    let mut i = from;
    let mut first_parens = None;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                let close = match_delim(bytes, i, b'{', b'}');
                return ItemEnd {
                    brace_body: Some((i + 1, close)),
                    first_parens,
                };
            }
            b'(' => {
                let close = match_delim(bytes, i, b'(', b')');
                if first_parens.is_none() {
                    first_parens = Some((i + 1, close));
                }
                i = (close + 1).min(bytes.len());
                continue;
            }
            b'[' => {
                let close = match_delim(bytes, i, b'[', b']');
                i = (close + 1).min(bytes.len());
                continue;
            }
            b';' => {
                return ItemEnd {
                    brace_body: None,
                    first_parens,
                };
            }
            _ => {}
        }
        i += 1;
    }
    ItemEnd {
        brace_body: None,
        first_parens,
    }
}

/// The final path-segment identifier of a path like
/// `darklight_govern::EstimateBytes` (empty input → empty name).
fn last_segment(path: &str) -> String {
    let seg = path.rsplit("::").next().unwrap_or(path).trim();
    let bytes = seg.as_bytes();
    let end = ident_end(bytes, 0);
    seg[..end].to_string()
}

/// The first uppercase-initial identifier in `text` — the nominal type
/// in an impl target like `&mut Foo<T>` or `Foo`.
fn first_type_ident(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_uppercase() && (i == 0 || !is_ident(bytes[i - 1])) {
            return text[i..ident_end(bytes, i)].to_string();
        }
        i += 1;
    }
    String::new()
}

/// Extracts every item from `scrubbed`, marking the ones inside
/// `#[cfg(test)]` spans.
pub fn extract_items(scrubbed: &Scrubbed) -> Vec<Item> {
    let bytes = scrubbed.text.as_bytes();
    let test_spans = scrubbed.test_spans();
    let in_test = |off: usize| test_spans.iter().any(|&(s, e)| off >= s && off < e);
    let mut items = Vec::new();

    for kw_start in keyword_positions(scrubbed, "fn") {
        let name_start = skip_ws(bytes, kw_start + 2);
        let name_end = ident_end(bytes, name_start);
        if name_end == name_start {
            continue;
        }
        let end = scan_item_end(bytes, name_end);
        items.push(Item {
            kind: ItemKind::Fn,
            name: scrubbed.text[name_start..name_end].to_string(),
            trait_name: None,
            offset: kw_start,
            body: end.brace_body,
            in_test: in_test(kw_start),
        });
    }

    for (kw, kind) in [("struct", ItemKind::Struct), ("enum", ItemKind::Enum)] {
        for kw_start in keyword_positions(scrubbed, kw) {
            let name_start = skip_ws(bytes, kw_start + kw.len());
            let name_end = ident_end(bytes, name_start);
            if name_end == name_start {
                continue;
            }
            let mut after = name_end;
            if bytes.get(skip_ws(bytes, after)) == Some(&b'<') {
                after = skip_generics(bytes, skip_ws(bytes, after));
            }
            let end = scan_item_end(bytes, after);
            // Named fields live in the brace body; tuple fields in the
            // paren group; unit structs have neither.
            let body = if kind == ItemKind::Struct {
                end.brace_body.or(end.first_parens)
            } else {
                end.brace_body
            };
            items.push(Item {
                kind,
                name: scrubbed.text[name_start..name_end].to_string(),
                trait_name: None,
                offset: kw_start,
                body,
                in_test: in_test(kw_start),
            });
        }
    }

    for kw_start in keyword_positions(scrubbed, "impl") {
        // `impl Trait` in return/argument position is a type, not an
        // item: items are only ever preceded by a block/item boundary.
        if !matches!(
            prev_non_ws(bytes, kw_start),
            None | Some(b'}' | b';' | b']' | b'{')
        ) {
            continue;
        }
        let mut i = skip_ws(bytes, kw_start + 4);
        if bytes.get(i) == Some(&b'<') {
            i = skip_generics(bytes, i);
        }
        let end = scan_item_end(bytes, i);
        let Some((body_start, body_end)) = end.brace_body else {
            continue;
        };
        let header = &scrubbed.text[i..body_start - 1];
        // ` for ` at angle depth 0 splits trait from type.
        let mut split = None;
        let hb = header.as_bytes();
        let mut depth = 0usize;
        let mut j = 0;
        while j + 5 <= hb.len() {
            match hb[j] {
                b'<' => depth += 1,
                b'>' if j > 0 && hb[j - 1] == b'-' => {}
                b'>' => depth = depth.saturating_sub(1),
                _ => {}
            }
            if depth == 0 && &header[j..j + 5] == " for " {
                split = Some(j);
                break;
            }
            j += 1;
        }
        let (trait_name, type_text) = match split {
            Some(at) => (Some(last_segment(&header[..at])), &header[at + 5..]),
            None => (None, header),
        };
        let type_text = type_text.split(" where ").next().unwrap_or(type_text);
        items.push(Item {
            kind: ItemKind::Impl,
            name: first_type_ident(type_text),
            trait_name,
            offset: kw_start,
            body: Some((body_start, body_end)),
            in_test: in_test(kw_start),
        });
    }

    for kw_start in keyword_positions(scrubbed, "use") {
        let path_start = skip_ws(bytes, kw_start + 3);
        let end = scrubbed.text[path_start..]
            .find(';')
            .map_or(bytes.len(), |n| path_start + n);
        items.push(Item {
            kind: ItemKind::Use,
            name: scrubbed.text[path_start..end].trim().to_string(),
            trait_name: None,
            offset: kw_start,
            body: None,
            in_test: in_test(kw_start),
        });
    }

    items.sort_by_key(|it| it.offset);
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items_of(src: &str) -> Vec<Item> {
        extract_items(&Scrubbed::new(src))
    }

    fn find<'a>(items: &'a [Item], kind: ItemKind, name: &str) -> &'a Item {
        items
            .iter()
            .find(|it| it.kind == kind && it.name == name)
            .unwrap_or_else(|| panic!("no {kind:?} named {name:?} in {items:?}"))
    }

    #[test]
    fn fns_structs_enums_with_bodies() {
        let src = "pub fn alpha(x: [u8; 4]) -> u64 { x.len() as u64 }\n\
                   struct Named { a: Widget, b: Vec<Gear> }\n\
                   struct Tuple(Widget, u32);\n\
                   struct Unit;\n\
                   enum Kind { A(Widget), B }\n";
        let items = items_of(src);
        let f = find(&items, ItemKind::Fn, "alpha");
        let (s, e) = f.body.unwrap();
        assert!(src[s..e].contains("x.len()"));
        let named = find(&items, ItemKind::Struct, "Named");
        assert!(src[named.body.unwrap().0..named.body.unwrap().1].contains("Widget"));
        let tuple = find(&items, ItemKind::Struct, "Tuple");
        assert_eq!(
            &src[tuple.body.unwrap().0..tuple.body.unwrap().1],
            "Widget, u32"
        );
        assert!(find(&items, ItemKind::Struct, "Unit").body.is_none());
        let kind = find(&items, ItemKind::Enum, "Kind");
        assert!(src[kind.body.unwrap().0..kind.body.unwrap().1].contains("A(Widget)"));
    }

    #[test]
    fn generics_and_fn_bounds_do_not_confuse_field_spans() {
        let src = "struct Wrap<F: Fn(u32) -> u64> where F: Clone { f: F, g: Gear }\n";
        let items = items_of(src);
        let w = find(&items, ItemKind::Struct, "Wrap");
        let (s, e) = w.body.unwrap();
        assert!(src[s..e].contains("Gear"), "body: {:?}", &src[s..e]);
        assert!(!src[s..e].contains("u64"));
    }

    #[test]
    fn impls_split_trait_and_type() {
        let src = "impl Widget { fn spin(&self) {} }\n\
                   impl darklight_govern::EstimateBytes for Widget { fn estimate_bytes(&self) -> u64 { 0 } }\n\
                   impl<T: Clone> Holder<T> { fn get(&self) {} }\n\
                   fn ret() -> impl Iterator<Item = u32> { 0..3 }\n";
        let items = items_of(src);
        let impls: Vec<_> = items.iter().filter(|i| i.kind == ItemKind::Impl).collect();
        assert_eq!(
            impls.len(),
            3,
            "return-position impl must not count: {impls:?}"
        );
        assert_eq!(impls[0].name, "Widget");
        assert_eq!(impls[0].trait_name, None);
        assert_eq!(impls[1].trait_name.as_deref(), Some("EstimateBytes"));
        assert_eq!(impls[1].name, "Widget");
        assert_eq!(impls[2].name, "Holder");
        // Methods inside impl bodies are extracted as fns too.
        assert_eq!(items.iter().filter(|i| i.kind == ItemKind::Fn).count(), 4);
    }

    #[test]
    fn use_items_capture_the_path() {
        let src = "use darklight_core::batch::BatchConfig;\nuse std::fmt;\n";
        let items = items_of(src);
        let uses: Vec<_> = items.iter().filter(|i| i.kind == ItemKind::Use).collect();
        assert_eq!(uses[0].name, "darklight_core::batch::BatchConfig");
        assert_eq!(uses[1].name, "std::fmt");
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn covered() {}\n}\n";
        let items = items_of(src);
        assert!(!find(&items, ItemKind::Fn, "prod").in_test);
        assert!(find(&items, ItemKind::Fn, "covered").in_test);
    }

    #[test]
    fn keywords_inside_identifiers_do_not_match() {
        let src = "fn undefined() { let fn_count = 1; let implication = fn_count; }\n";
        let items = items_of(src);
        assert_eq!(items.iter().filter(|i| i.kind == ItemKind::Fn).count(), 1);
        assert!(items.iter().all(|i| i.kind != ItemKind::Impl));
    }

    #[test]
    fn bodiless_trait_method_declarations() {
        let src = "trait T { fn required(&self) -> u64; fn provided(&self) { () } }\n";
        let items = items_of(src);
        assert!(find(&items, ItemKind::Fn, "required").body.is_none());
        assert!(find(&items, ItemKind::Fn, "provided").body.is_some());
    }
}
