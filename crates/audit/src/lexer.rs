//! A comment- and string-aware scrubber for Rust source.
//!
//! The audit rules are lexical, not syntactic: they search for forbidden
//! tokens (`partial_cmp`, `.unwrap()`, `HashMap`, …) in source text. A
//! naive substring search would fire on doc comments and string
//! literals, so every file is first *scrubbed*: comment bodies and
//! literal contents are replaced by spaces (newlines preserved, so every
//! byte offset maps to the same line/column in both views), while the
//! comments and string literals themselves are collected for the rules
//! that need them — suppression comments and metric-name literals.
//!
//! This is deliberately not a full parser (`syn` is unreachable in this
//! offline build environment, and the rules don't need one): it handles
//! line and nested block comments, plain/raw/byte string literals, char
//! literals vs. lifetimes, and raw identifiers.

/// One comment in the original source (`//…`, `///…`, `/*…*/`).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Byte offset of the comment opener.
    pub offset: usize,
    /// Full comment text including the opener.
    pub text: String,
}

/// One string literal (plain, raw, or byte) in the original source.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// Byte offset of the literal's first character (the quote, or the
    /// `r`/`b` prefix).
    pub offset: usize,
    /// The literal's inner text, uninterpreted (escapes left as written).
    pub content: String,
}

/// A scrubbed view of one source file.
#[derive(Debug)]
pub struct Scrubbed {
    /// The source with comment bodies and literal contents blanked to
    /// spaces; newlines and byte offsets are preserved.
    pub text: String,
    /// Every comment, in source order.
    pub comments: Vec<Comment>,
    /// Every string literal, in source order.
    pub strings: Vec<StrLit>,
    /// Byte offset of the start of each line.
    line_starts: Vec<usize>,
}

impl Scrubbed {
    /// Scrubs `source`, collecting comments and string literals.
    pub fn new(source: &str) -> Scrubbed {
        scrub(source)
    }

    /// 1-based `(line, column)` of a byte offset.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// Byte offsets of every occurrence of `pattern` in the scrubbed text.
    pub fn find_all(&self, pattern: &str) -> Vec<usize> {
        let mut out = Vec::new();
        let mut from = 0;
        while let Some(pos) = self.text[from..].find(pattern) {
            out.push(from + pos);
            from += pos + 1;
        }
        out
    }

    /// The string literal starting exactly at `offset`, if any.
    pub fn string_at(&self, offset: usize) -> Option<&StrLit> {
        self.strings
            .binary_search_by_key(&offset, |s| s.offset)
            .ok()
            .map(|i| &self.strings[i])
    }

    /// Byte spans of `#[cfg(test)]`-gated items (the attribute through
    /// the matching close brace). Rules that only police production code
    /// drop findings inside these spans.
    pub fn test_spans(&self) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        for start in self.find_all("#[cfg(test)]") {
            let mut i = start + "#[cfg(test)]".len();
            let bytes = self.text.as_bytes();
            // Skip to the item's opening brace; stop early at `;` (an
            // item with no body) or another `#` attribute line.
            let mut depth = 0usize;
            let mut opened = false;
            while i < bytes.len() {
                match bytes[i] {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            spans.push((start, i + 1));
                            break;
                        }
                    }
                    b';' if !opened => {
                        spans.push((start, i + 1));
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
            if i >= bytes.len() {
                spans.push((start, bytes.len()));
            }
        }
        spans
    }
}

fn scrub(source: &str) -> Scrubbed {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut comments = Vec::new();
    let mut strings = Vec::new();
    let mut i = 0;

    let blank = |out: &mut [u8], from: usize, to: usize| {
        for b in &mut out[from..to] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };

    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = source[i..].find('\n').map_or(bytes.len(), |n| i + n);
                comments.push(Comment {
                    offset: i,
                    text: source[i..end].to_string(),
                });
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                comments.push(Comment {
                    offset: i,
                    text: source[i..j].to_string(),
                });
                blank(&mut out, i, j);
                i = j;
            }
            b'"' => {
                let (end, inner) = plain_string_end(source, i);
                strings.push(StrLit {
                    offset: i,
                    content: inner,
                });
                blank(&mut out, i + 1, end.saturating_sub(1).max(i + 1));
                i = end;
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                let lit_start = i;
                let mut j = i;
                if bytes[j] == b'b' {
                    j += 1;
                }
                if bytes.get(j) == Some(&b'r') {
                    j += 1;
                    let mut hashes = 0usize;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    // starts_raw_or_byte_string guarantees a quote here.
                    let body_start = j + 1;
                    let closer = format!("\"{}", "#".repeat(hashes));
                    let end = source[body_start..]
                        .find(&closer)
                        .map_or(bytes.len(), |n| body_start + n + closer.len());
                    strings.push(StrLit {
                        offset: lit_start,
                        content: source[body_start..end - closer.len()].to_string(),
                    });
                    blank(&mut out, body_start, end.saturating_sub(closer.len()));
                    i = end;
                } else {
                    // b"…": plain string with a byte prefix.
                    let (end, inner) = plain_string_end(source, j);
                    strings.push(StrLit {
                        offset: lit_start,
                        content: inner,
                    });
                    blank(&mut out, j + 1, end.saturating_sub(1).max(j + 1));
                    i = end;
                }
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    blank(&mut out, i + 1, end - 1);
                    i = end;
                } else {
                    // A lifetime (or `'` in macro position): plain code.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }

    let text = String::from_utf8(out).expect("blanking preserves UTF-8");
    let mut line_starts = vec![0usize];
    for (pos, b) in source.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(pos + 1);
        }
    }
    Scrubbed {
        text,
        comments,
        strings,
        line_starts,
    }
}

/// End offset (exclusive) and inner text of a `"…"` string starting at
/// `open` (the opening quote).
fn plain_string_end(source: &str, open: usize) -> (usize, String) {
    let bytes = source.as_bytes();
    let mut j = open + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => {
                return (j + 1, source[open + 1..j].to_string());
            }
            _ => j += 1,
        }
    }
    (bytes.len(), source[open + 1..].to_string())
}

/// Whether offset `i` starts `r"`, `r#…#"`, `b"`, or `br#…#"` — and not a
/// raw identifier (`r#match`) or a plain ident containing `r`/`b`.
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    // Reject when preceded by an identifier character (e.g. `var"x"`
    // cannot occur, but `for r in …` must not treat `r` specially).
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        bytes.get(j) == Some(&b'"')
    } else {
        bytes[i] == b'b' && bytes.get(j) == Some(&b'"')
    }
}

/// If a char literal starts at `i` (an apostrophe), its end offset
/// (exclusive); `None` for lifetimes.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1) {
        Some(b'\\') => {
            // Escaped char: scan to the closing quote.
            let mut j = i + 2;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'\'' => return Some(j + 1),
                    _ => j += 1,
                }
            }
            None
        }
        Some(_) => {
            // One char (possibly multi-byte) then a closing quote makes a
            // literal; anything else is a lifetime like `'a` or `'static`.
            bytes[i + 2..bytes.len().min(i + 6)]
                .iter()
                .position(|&b| b == b'\'')
                .map(|off| i + 2 + off + 1)
                .filter(|&end| {
                    std::str::from_utf8(&bytes[i + 1..end - 1])
                        .is_ok_and(|s| s.chars().count() == 1)
                })
        }
        None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked_and_collected() {
        let s = Scrubbed::new("let x = 1; // partial_cmp here\nlet y = 2;");
        assert!(!s.text.contains("partial_cmp"));
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].text.contains("partial_cmp"));
        assert_eq!(s.line_col(s.comments[0].offset), (1, 12));
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let s = Scrubbed::new("a /* outer /* inner unwrap() */ still */ b");
        assert!(!s.text.contains("unwrap"));
        assert!(s.text.starts_with("a "));
        assert!(s.text.ends_with(" b"));
    }

    #[test]
    fn string_contents_are_blanked_but_collected() {
        let s = Scrubbed::new(r#"m.counter("attrib.queries_scored").incr();"#);
        assert!(!s.text.contains("attrib"));
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].content, "attrib.queries_scored");
        assert!(s.string_at(s.strings[0].offset).is_some());
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let s = Scrubbed::new(r#"let a = "he said \"unwrap()\""; done()"#);
        assert!(!s.text.contains("unwrap"));
        assert!(s.text.contains("done()"));
    }

    #[test]
    fn raw_and_byte_strings_are_blanked() {
        let s = Scrubbed::new("let a = r#\"has \"unwrap()\" inside\"#; let b = b\"HashMap\";");
        assert!(!s.text.contains("unwrap"));
        assert!(!s.text.contains("HashMap"));
        assert_eq!(s.strings.len(), 2);
        assert_eq!(s.strings[1].content, "HashMap");
    }

    #[test]
    fn raw_identifiers_are_not_strings() {
        let s = Scrubbed::new("let r#fn = 1; let x = r#fn;");
        assert_eq!(s.strings.len(), 0);
        assert!(s.text.contains("r#fn"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let s = Scrubbed::new("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; let m = 'é'; }");
        // Lifetimes survive; char-literal contents are blanked so the
        // quote char can't open a phantom string.
        assert!(s.text.contains("<'a>"));
        assert!(s.text.contains("&'a str"));
        assert_eq!(s.strings.len(), 0);
        assert!(!s.text.contains('é'));
    }

    #[test]
    fn multi_hash_raw_strings_swallow_lesser_closers() {
        // `"#` inside an `r##` string must not terminate it; only `"##`
        // does. The byte-raw `br##` form follows the same rule.
        let src = "let a = r##\"has \"# and unwrap() inside\"##; let b = br##\"x\"# y\"##; ok()";
        let s = Scrubbed::new(src);
        assert!(!s.text.contains("unwrap"));
        assert_eq!(s.strings.len(), 2);
        assert_eq!(s.strings[0].content, "has \"# and unwrap() inside");
        assert_eq!(s.strings[1].content, "x\"# y");
        assert!(s.text.contains("ok()"), "code after both literals survives");
        assert_eq!(s.text.len(), src.len());
    }

    #[test]
    fn byte_chars_and_lifetimes_disambiguate_in_generics() {
        // Byte-char literals (`b'x'`, `b'\''`), plain char literals in
        // range patterns, and lifetimes in generic position all coexist:
        // none of them may open a phantom string or eat a lifetime.
        let src = "fn g<'long, 'b>(v: &'long [u8]) -> bool {\n\
                   let lo = b'a'; let esc = b'\\''; let q = '\\'';\n\
                   matches!(v[0] as char, 'a'..='z') && lo < b'z'\n\
                   }";
        let s = Scrubbed::new(src);
        assert_eq!(s.strings.len(), 0, "no phantom strings");
        assert!(s.text.contains("<'long, 'b>"));
        assert!(s.text.contains("&'long [u8]"));
        // Char/byte-char contents are blanked; the quotes remain.
        assert!(!s.text.contains("b'a'"));
        assert!(s.text.contains("matches!(v[0] as char,"));
        assert!(s.text.ends_with('}'), "close brace survives the scrub");
        assert_eq!(s.text.len(), src.len());
    }

    #[test]
    fn allow_in_nested_block_comment_is_one_comment() {
        // A nested block comment is collected as ONE comment spanning the
        // outermost terminator, so an `audit:allow` buried inside it is
        // attributed to the outer comment's offset — and the code after
        // the true terminator is not swallowed.
        let src = "/* outer /* audit:allow(some-rule) -- why */ tail */ fn f() {}";
        let s = Scrubbed::new(src);
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].offset, 0);
        assert!(s.comments[0].text.contains("audit:allow(some-rule)"));
        assert!(s.comments[0].text.ends_with("tail */"));
        assert!(
            s.text.contains("fn f() {}"),
            "code after the outer terminator survives"
        );
        assert!(
            !s.text.contains("audit:allow"),
            "the allow text is blanked from code view"
        );
    }

    #[test]
    fn offsets_and_lines_are_preserved() {
        let src = "line one\n// a comment\nlet x = \"abc\";\n";
        let s = Scrubbed::new(src);
        assert_eq!(s.text.len(), src.len());
        assert_eq!(s.line_col(src.find("abc").unwrap()), (3, 10));
    }

    #[test]
    fn cfg_test_spans_cover_the_module() {
        let src =
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n  fn a() { x.unwrap(); }\n}\nfn after() {}\n";
        let s = Scrubbed::new(src);
        let spans = s.test_spans();
        assert_eq!(spans.len(), 1);
        let (start, end) = spans[0];
        assert!(start < src.find("mod tests").unwrap());
        assert!(end > src.find("unwrap").unwrap());
        assert!(end < src.find("fn after").unwrap());
    }
}
