//! Phase-2 input: the workspace item graph.
//!
//! After phase 1 has scrubbed and item-extracted every file, the graph
//! assembles the cross-file facts the graph rules need: which crate
//! each file belongs to, every struct/enum definition with its field
//! type names, every `impl Trait for Type` pair, and every function
//! with its direct impurity evidence and bare-call edges. The graph is
//! built once per audit run and shared by all graph rules.
//!
//! ## The layering table
//!
//! [`LAYERS`] pins the workspace's dependency order. It is derived
//! from the crate manifests, not aspiration: a crate at layer *L* may
//! only reference `darklight_*` crates at layers strictly below *L*.
//! `par` sits *above* `govern` (the pool polls deadlines and reports
//! through govern's fault hooks), and `synth` sits beside `core` (both
//! consume corpus but neither sees the other). Adding a crate means
//! adding a row here — an unknown `darklight_*` name is itself a
//! `crate-layering` finding, so the table can never silently rot.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{Item, ItemKind};
use crate::lexer::Scrubbed;

/// The pinned crate layering: `(short name, layer)`. Lower layers are
/// closer to the bottom of the dependency DAG.
pub const LAYERS: &[(&str, u32)] = &[
    ("order", 0),
    ("obs", 0),
    ("activity", 1),
    ("text", 1),
    ("govern", 1),
    ("par", 2),
    ("store", 2),
    ("corpus", 3),
    ("features", 3),
    ("synth", 4),
    ("core", 4),
    ("eval", 5),
    ("audit", 6),
    ("bench", 6),
];

/// The layer of a crate short name (`"core"` → 4), if pinned.
pub fn layer_of(crate_name: &str) -> Option<u32> {
    LAYERS
        .iter()
        .find(|&&(n, _)| n == crate_name)
        .map(|&(_, l)| l)
}

/// One file's contribution to the graph, borrowed from the driver's
/// per-file analysis.
#[derive(Debug)]
pub struct FileView<'a> {
    /// Index into the driver's file list (findings point back here).
    pub idx: usize,
    /// Workspace-relative path with forward slashes.
    pub rel_path: &'a str,
    /// Scrubbed source.
    pub scrubbed: &'a Scrubbed,
    /// Extracted items.
    pub items: &'a [Item],
    /// Whether the whole file is test code (`tests/`, `benches/`, …).
    pub file_is_test: bool,
    /// `#[cfg(test)]` spans within the file.
    pub test_spans: &'a [(usize, usize)],
}

impl FileView<'_> {
    /// The owning crate's short name for `crates/<name>/src/**` files;
    /// `None` for the root crate, integration tests, and benches —
    /// graph rules police production crate code only.
    pub fn crate_name(&self) -> Option<&str> {
        let rest = self.rel_path.strip_prefix("crates/")?;
        let (name, tail) = rest.split_once('/')?;
        tail.starts_with("src/").then_some(name)
    }

    /// Whether `offset` falls inside a `#[cfg(test)]` span.
    pub fn in_test_span(&self, offset: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }
}

/// A struct or enum definition.
#[derive(Debug)]
pub struct TypeDef {
    /// File the definition lives in.
    pub file_idx: usize,
    /// Byte offset of the `struct`/`enum` keyword.
    pub offset: usize,
    /// Type name.
    pub name: String,
    /// Owning crate short name.
    pub crate_name: String,
    /// Uppercase-initial identifiers in the field/variant body — the
    /// nominal types this definition's state reaches.
    pub field_types: Vec<String>,
}

/// A function definition with the facts the purity rule needs.
#[derive(Debug)]
pub struct FnDef {
    /// File the definition lives in.
    pub file_idx: usize,
    /// Byte offset of the `fn` keyword.
    pub offset: usize,
    /// Function name.
    pub name: String,
    /// Owning crate short name.
    pub crate_name: String,
    /// Direct impurity evidence: `(offset, matched token, category)`.
    pub impure: Vec<(usize, String, &'static str)>,
    /// Bare callees (`helper(...)` — not method or path calls), resolved
    /// by name against same-crate functions.
    pub callees: Vec<String>,
}

/// The assembled workspace graph.
#[derive(Debug, Default)]
pub struct ItemGraph {
    /// Production struct/enum definitions by name. Names are treated as
    /// workspace-unique; on collision the first definition wins, which
    /// is conservative for reachability.
    pub types: BTreeMap<String, TypeDef>,
    /// Every `(trait, type)` impl pair in the workspace, test code
    /// included — an impl written next to tests still satisfies
    /// coverage.
    pub impls: BTreeSet<(String, String)>,
    /// Production function definitions (bodiless declarations omitted).
    pub fns: Vec<FnDef>,
}

/// Tokens whose presence makes a function directly impure, by category.
/// Method/associated calls are matched textually; bare calls into other
/// workspace functions are handled transitively via [`FnDef::callees`].
pub const IMPURE_TOKENS: &[(&str, &str)] = &[
    (".counter(", "metrics recording"),
    (".gauge(", "metrics recording"),
    (".timer(", "metrics recording"),
    (".histogram(", "metrics recording"),
    ("Instant::now", "clock read"),
    ("SystemTime::now", "clock read"),
    ("thread_rng", "ambient RNG"),
    ("rand::random", "ambient RNG"),
    ("env::var", "environment read"),
    ("std::env", "environment read"),
    ("available_parallelism", "thread-count read"),
    ("resolve_threads", "thread-count read"),
    ("effective_threads", "thread-count read"),
    ("observed_threads", "thread-count read"),
];

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Uppercase-initial identifiers in `text` (dedup'd, order preserved).
fn type_idents(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out: Vec<String> = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if is_ident(bytes[i]) && (i == 0 || !is_ident(bytes[i - 1])) {
            let mut j = i;
            while j < bytes.len() && is_ident(bytes[j]) {
                j += 1;
            }
            if bytes[i].is_ascii_uppercase() {
                let name = &text[i..j];
                if !out.iter().any(|n| n == name) {
                    out.push(name.to_string());
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// Keywords that can precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "for", "while", "match", "loop", "return", "fn", "let", "in", "as", "move", "ref", "mut",
    "where", "impl", "use", "pub", "unsafe", "async", "dyn", "break", "continue", "else",
];

/// Bare-call names in a fn body: lowercase identifiers immediately
/// followed by `(`, excluding method calls (`.name(`), path calls
/// (`path::name(` — their purity is judged by [`IMPURE_TOKENS`]),
/// macros (`name!(`), and keywords.
fn bare_callees(body: &str) -> Vec<String> {
    let bytes = body.as_bytes();
    let mut out: Vec<String> = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if is_ident(bytes[i]) && (i == 0 || !is_ident(bytes[i - 1])) {
            let mut j = i;
            while j < bytes.len() && is_ident(bytes[j]) {
                j += 1;
            }
            let name = &body[i..j];
            let prev = bytes[..i]
                .iter()
                .rev()
                .copied()
                .find(|b| !b.is_ascii_whitespace());
            let callish = bytes.get(j) == Some(&b'(')
                && bytes[i].is_ascii_lowercase()
                && !matches!(prev, Some(b'.') | Some(b':'))
                && !NON_CALL_KEYWORDS.contains(&name);
            if callish && !out.iter().any(|n| n == name) {
                out.push(name.to_string());
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

impl ItemGraph {
    /// Assembles the graph from every file's phase-1 results.
    pub fn build(files: &[FileView]) -> ItemGraph {
        let mut graph = ItemGraph::default();
        for file in files {
            for item in file.items {
                match item.kind {
                    ItemKind::Impl => {
                        if let Some(trait_name) = &item.trait_name {
                            graph.impls.insert((trait_name.clone(), item.name.clone()));
                        }
                    }
                    ItemKind::Struct | ItemKind::Enum => {
                        let Some(crate_name) = file.crate_name() else {
                            continue;
                        };
                        if file.file_is_test || item.in_test {
                            continue;
                        }
                        let field_types = item
                            .body
                            .map(|(s, e)| type_idents(&file.scrubbed.text[s..e]))
                            .unwrap_or_default();
                        graph.types.entry(item.name.clone()).or_insert(TypeDef {
                            file_idx: file.idx,
                            offset: item.offset,
                            name: item.name.clone(),
                            crate_name: crate_name.to_string(),
                            field_types,
                        });
                    }
                    ItemKind::Fn => {
                        let Some(crate_name) = file.crate_name() else {
                            continue;
                        };
                        if file.file_is_test || item.in_test {
                            continue;
                        }
                        let Some((s, e)) = item.body else {
                            continue;
                        };
                        let body = &file.scrubbed.text[s..e];
                        let mut impure = Vec::new();
                        for &(token, category) in IMPURE_TOKENS {
                            if let Some(pos) = body.find(token) {
                                impure.push((s + pos, token.to_string(), category));
                            }
                        }
                        graph.fns.push(FnDef {
                            file_idx: file.idx,
                            offset: item.offset,
                            name: item.name.clone(),
                            crate_name: crate_name.to_string(),
                            impure,
                            callees: bare_callees(body),
                        });
                    }
                    ItemKind::Use => {}
                }
            }
        }
        graph
    }
}

/// `darklight_*` crate references in a file's scrubbed text:
/// `(offset, short name)`, first occurrence per referenced crate,
/// test-span references excluded.
pub fn crate_refs(file: &FileView) -> Vec<(usize, String)> {
    let bytes = file.scrubbed.text.as_bytes();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut out = Vec::new();
    for offset in file.scrubbed.find_all("darklight_") {
        if offset > 0 && is_ident(bytes[offset - 1]) {
            continue;
        }
        if file.in_test_span(offset) {
            continue;
        }
        let start = offset + "darklight_".len();
        let mut end = start;
        while end < bytes.len() && is_ident(bytes[end]) {
            end += 1;
        }
        if end == start {
            continue;
        }
        let name = file.scrubbed.text[start..end].to_string();
        if seen.insert(name.clone()) {
            out.push((offset, name));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract_items;

    fn view<'a>(
        rel_path: &'a str,
        scrubbed: &'a Scrubbed,
        items: &'a [Item],
        test_spans: &'a [(usize, usize)],
    ) -> FileView<'a> {
        FileView {
            idx: 0,
            rel_path,
            scrubbed,
            items,
            file_is_test: false,
            test_spans,
        }
    }

    #[test]
    fn layer_table_is_a_function_of_crate_name() {
        assert_eq!(layer_of("order"), Some(0));
        assert_eq!(layer_of("core"), Some(4));
        assert_eq!(layer_of("no-such-crate"), None);
    }

    #[test]
    fn builds_types_impls_and_fns() {
        let src = "pub struct Record { doc: PreparedDoc, n: u32 }\n\
                   impl EstimateBytes for Record { fn estimate_bytes(&self) -> u64 { 0 } }\n\
                   fn helper(x: u64) -> u64 { stamp(x) }\n\
                   fn stamp(x: u64) -> u64 { let t = Instant::now(); x }\n";
        let scrubbed = Scrubbed::new(src);
        let items = extract_items(&scrubbed);
        let spans = scrubbed.test_spans();
        let v = view("crates/core/src/dataset.rs", &scrubbed, &items, &spans);
        let graph = ItemGraph::build(std::slice::from_ref(&v));
        assert_eq!(graph.types["Record"].field_types, vec!["PreparedDoc"]);
        assert!(graph
            .impls
            .contains(&("EstimateBytes".to_string(), "Record".to_string())));
        let helper = graph.fns.iter().find(|f| f.name == "helper").unwrap();
        assert_eq!(helper.callees, vec!["stamp"]);
        assert!(helper.impure.is_empty());
        let stamp = graph.fns.iter().find(|f| f.name == "stamp").unwrap();
        assert_eq!(stamp.impure[0].2, "clock read");
    }

    #[test]
    fn bare_callees_exclude_methods_paths_and_macros() {
        let body = "self.refresh(); darklight_par::par_map(); format!(\"x\"); helper(1); Some(2); if (a) {}";
        assert_eq!(bare_callees(body), vec!["helper"]);
    }

    #[test]
    fn crate_refs_dedupe_and_skip_tests() {
        let src = "use darklight_obs::Metrics;\n\
                   fn f() { darklight_obs::noop(); darklight_par::par_map(); }\n\
                   #[cfg(test)]\nmod tests { use darklight_core::x; }\n";
        let scrubbed = Scrubbed::new(src);
        let items = extract_items(&scrubbed);
        let spans = scrubbed.test_spans();
        let v = view("crates/govern/src/lib.rs", &scrubbed, &items, &spans);
        let refs = crate_refs(&v);
        let names: Vec<&str> = refs.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, vec!["obs", "par"]);
    }

    #[test]
    fn crate_name_requires_the_src_tree() {
        let scrubbed = Scrubbed::new("");
        let items: Vec<Item> = Vec::new();
        let spans: Vec<(usize, usize)> = Vec::new();
        assert_eq!(
            view("crates/core/src/batch.rs", &scrubbed, &items, &spans).crate_name(),
            Some("core")
        );
        assert_eq!(
            view("crates/core/tests/x.rs", &scrubbed, &items, &spans).crate_name(),
            None
        );
        assert_eq!(
            view("src/main.rs", &scrubbed, &items, &spans).crate_name(),
            None
        );
    }
}
