//! The audit driver: the shared two-phase engine behind both rule
//! families.
//!
//! **Phase 1** scrubs every file ([`crate::lexer::Scrubbed`]), extracts
//! its items ([`crate::items::extract_items`]), parses its
//! `audit:allow` annotations, and runs the per-file lexical catalog
//! ([`crate::rules::catalog`]). **Phase 2** assembles the workspace
//! item graph ([`crate::graph::ItemGraph`]) and runs the cross-file
//! graph catalog ([`crate::graph_rules::catalog`]). Findings from both
//! phases flow through one suppression pass, and two meta-rules close
//! the loop: `bad-suppression` (malformed allows) and
//! `stale-suppression` (allows whose rule no longer fires on their
//! span). Neither meta-rule can itself be suppressed.
//!
//! ## Suppression policy
//!
//! A finding is suppressed by a comment on the same line or the line
//! directly above:
//!
//! ```text
//! // audit:allow(rule-id) -- reason the invariant holds here
//! ```
//!
//! The reason is mandatory; an allow without one (or naming an unknown
//! rule) is a `bad-suppression` finding, and an allow that suppresses
//! nothing is a `stale-suppression` finding — every allow in the tree
//! is therefore live, reasoned, and correctly spelled. Suppressed
//! findings still appear in `--format json` output with
//! `"suppressed": true` so dashboards can track debt.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use darklight_obs::Json;

use crate::graph::{FileView, ItemGraph};
use crate::graph_rules;
use crate::items::{extract_items, Item};
use crate::lexer::Scrubbed;
use crate::rules::{catalog, FileCtx, RawFinding};

/// A fully resolved finding.
#[derive(Debug)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Rule id (`bad-suppression` / `stale-suppression` for the
    /// meta-rules).
    pub rule: String,
    /// Explanation.
    pub message: String,
    /// Whether an `audit:allow` covered it.
    pub suppressed: bool,
}

/// The outcome of one audit run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, suppressed or not, in path/line order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
}

impl Report {
    /// Findings that fail the build.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// Human-readable rendering, one line per finding plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in self.unsuppressed() {
            out.push_str(&format!(
                "{}:{}:{}: error[{}]: {}\n",
                f.file, f.line, f.col, f.rule, f.message
            ));
        }
        let errors = self.unsuppressed().count();
        let suppressed = self.findings.len() - errors;
        out.push_str(&format!(
            "audit: {} file(s) checked, {} error(s), {} suppressed\n",
            self.files_checked, errors, suppressed
        ));
        out
    }

    /// JSON rendering (stable key order) for CI consumption.
    pub fn render_json(&self) -> String {
        let mut doc = Json::object();
        doc.set("files_checked", Json::UInt(self.files_checked as u64));
        doc.set(
            "unsuppressed_errors",
            Json::UInt(self.unsuppressed().count() as u64),
        );
        doc.set(
            "findings",
            Json::Array(
                self.findings
                    .iter()
                    .map(|f| {
                        let mut o = Json::object();
                        o.set("file", Json::Str(f.file.clone()));
                        o.set("line", Json::UInt(f.line as u64));
                        o.set("col", Json::UInt(f.col as u64));
                        o.set("rule", Json::Str(f.rule.clone()));
                        o.set("message", Json::Str(f.message.clone()));
                        o.set("suppressed", Json::Bool(f.suppressed));
                        o
                    })
                    .collect(),
            ),
        );
        doc.render_pretty()
    }

    /// GitHub Actions workflow-command rendering: one `::error`
    /// annotation per unsuppressed finding (shown inline on the PR
    /// diff), then the human summary line.
    pub fn render_github(&self) -> String {
        fn escape(msg: &str) -> String {
            msg.replace('%', "%25")
                .replace('\r', "%0D")
                .replace('\n', "%0A")
        }
        let mut out = String::new();
        for f in self.unsuppressed() {
            out.push_str(&format!(
                "::error file={},line={},col={},title=audit {}::{}\n",
                f.file,
                f.line,
                f.col,
                f.rule,
                escape(&f.message)
            ));
        }
        out.push_str(&format!(
            "audit: {} file(s) checked, {} error(s), {} suppressed\n",
            self.files_checked,
            self.unsuppressed().count(),
            self.findings.len() - self.unsuppressed().count()
        ));
        out
    }
}

/// One parsed `audit:allow` comment.
#[derive(Debug)]
struct Allow {
    offset: usize,
    line: usize,
    rules: Vec<String>,
    has_reason: bool,
    /// Comment is the only content on its line. Only standalone allows
    /// reach the line below; a trailing allow covers its own line alone.
    standalone: bool,
}

/// Extracts `audit:allow(...)` annotations from a file's comments.
fn parse_allows(scrubbed: &Scrubbed) -> Vec<Allow> {
    let mut allows = Vec::new();
    for comment in &scrubbed.comments {
        // Only plain comments can suppress: doc comments (`///`, `//!`,
        // `/**`, `/*!`) merely *talk about* annotations.
        if comment.text.starts_with("///")
            || comment.text.starts_with("//!")
            || comment.text.starts_with("/**")
            || comment.text.starts_with("/*!")
        {
            continue;
        }
        let Some(start) = comment.text.find("audit:allow(") else {
            continue;
        };
        let after = &comment.text[start + "audit:allow(".len()..];
        let Some(close) = after.find(')') else {
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let tail = &after[close + 1..];
        let has_reason = tail
            .trim_start()
            .strip_prefix("--")
            .is_some_and(|reason| !reason.trim().is_empty());
        let (line, col) = scrubbed.line_col(comment.offset);
        let line_start = comment.offset - (col - 1);
        let standalone = scrubbed.text[line_start..comment.offset]
            .chars()
            .all(char::is_whitespace);
        allows.push(Allow {
            offset: comment.offset,
            line,
            rules,
            has_reason,
            standalone,
        });
    }
    allows
}

/// Phase-1 state for one file.
struct AnalyzedFile {
    rel_path: String,
    scrubbed: Scrubbed,
    items: Vec<Item>,
    allows: Vec<Allow>,
    test_spans: Vec<(usize, usize)>,
    file_is_test: bool,
}

/// A finding before suppression: `(file, offset)` plus identity.
struct Pending {
    file_idx: usize,
    offset: usize,
    rule: &'static str,
    message: String,
}

/// The meta-rules the driver itself implements. They are structural —
/// about the suppression mechanism, not the code — so they live here
/// rather than in either catalog, and can never be suppressed.
pub fn meta_rules() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "bad-suppression",
            "audit:allow with no reason or an unknown rule id (unsuppressible)",
        ),
        (
            "stale-suppression",
            "audit:allow whose rule no longer fires on its span (unsuppressible)",
        ),
    ]
}

/// Every suppressible rule id: the lexical catalog plus the graph
/// catalog plus the driver's stale-suppression companion set.
fn known_rule_ids() -> Vec<String> {
    let mut ids: Vec<String> = catalog().iter().map(|r| r.id().to_string()).collect();
    ids.extend(graph_rules::catalog().iter().map(|r| r.id().to_string()));
    ids
}

/// Audits a set of files as one workspace: both phases, one suppression
/// pass, meta-rules last. `sources` are `(rel_path, source)` pairs.
pub fn check_sources(sources: &[(String, String)]) -> Vec<Finding> {
    let files: Vec<AnalyzedFile> = sources
        .iter()
        .map(|(rel_path, source)| {
            let scrubbed = Scrubbed::new(source);
            let items = extract_items(&scrubbed);
            let allows = parse_allows(&scrubbed);
            let test_spans = scrubbed.test_spans();
            let file_is_test = rel_path
                .split('/')
                .any(|part| part == "tests" || part == "benches" || part == "examples");
            AnalyzedFile {
                rel_path: rel_path.clone(),
                scrubbed,
                items,
                allows,
                test_spans,
                file_is_test,
            }
        })
        .collect();

    let mut pending: Vec<Pending> = Vec::new();

    // Phase 1: per-file lexical rules.
    for (file_idx, file) in files.iter().enumerate() {
        let ctx = FileCtx {
            rel_path: &file.rel_path,
            scrubbed: &file.scrubbed,
            file_is_test: file.file_is_test,
        };
        for rule in catalog() {
            if !rule.applies(&ctx) || (file.file_is_test && rule.skip_test_code()) {
                continue;
            }
            let mut raw: Vec<RawFinding> = Vec::new();
            rule.check(&ctx, &mut raw);
            for rf in raw {
                if rule.skip_test_code()
                    && file
                        .test_spans
                        .iter()
                        .any(|&(s, e)| rf.offset >= s && rf.offset < e)
                {
                    continue;
                }
                pending.push(Pending {
                    file_idx,
                    offset: rf.offset,
                    rule: rule.id(),
                    message: rf.message,
                });
            }
        }
    }

    // Phase 2: the item graph and the cross-file rules.
    let views: Vec<FileView> = files
        .iter()
        .enumerate()
        .map(|(idx, f)| FileView {
            idx,
            rel_path: &f.rel_path,
            scrubbed: &f.scrubbed,
            items: &f.items,
            file_is_test: f.file_is_test,
            test_spans: &f.test_spans,
        })
        .collect();
    let graph = ItemGraph::build(&views);
    for rule in graph_rules::catalog() {
        let mut raw: Vec<graph_rules::GraphFinding> = Vec::new();
        rule.check(&views, &graph, &mut raw);
        for gf in raw {
            pending.push(Pending {
                file_idx: gf.file_idx,
                offset: gf.offset,
                rule: rule.id(),
                message: gf.message,
            });
        }
    }

    // One suppression pass over both phases, tracking which allows earn
    // their keep.
    let known_rules = known_rule_ids();
    let mut findings: Vec<(usize, Finding)> = Vec::new();
    let mut allow_used: Vec<Vec<Vec<bool>>> = files
        .iter()
        .map(|f| {
            f.allows
                .iter()
                .map(|a| vec![false; a.rules.len()])
                .collect()
        })
        .collect();
    let mut allow_bad: Vec<Vec<bool>> = files.iter().map(|f| vec![false; f.allows.len()]).collect();

    // Malformed allows are findings in their own right.
    for (file_idx, file) in files.iter().enumerate() {
        for (allow_idx, allow) in file.allows.iter().enumerate() {
            for rule in &allow.rules {
                if !known_rules.contains(rule) {
                    allow_bad[file_idx][allow_idx] = true;
                    findings.push((
                        file_idx,
                        Finding {
                            file: file.rel_path.clone(),
                            line: allow.line,
                            col: 1,
                            rule: "bad-suppression".to_string(),
                            message: format!("audit:allow names unknown rule {rule:?}"),
                            suppressed: false,
                        },
                    ));
                }
            }
            if !allow.has_reason {
                allow_bad[file_idx][allow_idx] = true;
                findings.push((
                    file_idx,
                    Finding {
                        file: file.rel_path.clone(),
                        line: allow.line,
                        col: 1,
                        rule: "bad-suppression".to_string(),
                        message: "audit:allow without a reason: append `-- <why this is sound>`"
                            .to_string(),
                        suppressed: false,
                    },
                ));
            }
        }
    }

    for p in pending {
        let file = &files[p.file_idx];
        let (line, col) = file.scrubbed.line_col(p.offset);
        let rule_id = p.rule;
        let mut suppressed = false;
        for (allow_idx, allow) in file.allows.iter().enumerate() {
            if !allow.has_reason
                || !(allow.line == line || (allow.standalone && allow.line + 1 == line))
            {
                continue;
            }
            if let Some(rule_idx) = allow.rules.iter().position(|r| r == rule_id) {
                allow_used[p.file_idx][allow_idx][rule_idx] = true;
                suppressed = true;
            }
        }
        findings.push((
            p.file_idx,
            Finding {
                file: file.rel_path.clone(),
                line,
                col,
                rule: rule_id.to_string(),
                message: p.message,
                suppressed,
            },
        ));
    }

    // Meta-rule: an allow whose named rule suppressed nothing is stale.
    // Allows in test code are skipped (production rules never fire
    // there), as are allows already flagged bad-suppression.
    for (file_idx, file) in files.iter().enumerate() {
        if file.file_is_test {
            continue;
        }
        for (allow_idx, allow) in file.allows.iter().enumerate() {
            if allow_bad[file_idx][allow_idx]
                || file
                    .test_spans
                    .iter()
                    .any(|&(s, e)| allow.offset >= s && allow.offset < e)
            {
                continue;
            }
            for (rule_idx, rule) in allow.rules.iter().enumerate() {
                if allow_used[file_idx][allow_idx][rule_idx] {
                    continue;
                }
                findings.push((
                    file_idx,
                    Finding {
                        file: file.rel_path.clone(),
                        line: allow.line,
                        col: 1,
                        rule: "stale-suppression".to_string(),
                        message: format!(
                            "audit:allow({rule}) suppresses nothing: the rule no longer \
                             fires on this span — delete the annotation (or re-point it \
                             at the line that still needs it)"
                        ),
                        suppressed: false,
                    },
                ));
            }
        }
    }

    findings.sort_by(|a, b| {
        (a.0, a.1.line, a.1.col, &a.1.rule).cmp(&(b.0, b.1.line, b.1.col, &b.1.rule))
    });
    findings.into_iter().map(|(_, f)| f).collect()
}

/// Audits one file's source. Public so fixture tests can drive rules
/// against synthetic paths without touching the filesystem. The file is
/// treated as a one-file workspace: graph rules and the meta-rules run
/// over it too.
pub fn check_source(rel_path: &str, source: &str) -> Vec<Finding> {
    check_sources(&[(rel_path.to_string(), source.to_string())])
}

/// Walks the workspace at `root` and audits every Rust source file.
///
/// # Errors
///
/// Returns the first I/O error encountered while walking or reading.
pub fn run(root: &Path) -> std::io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["crates", "src", "tests"] {
        collect_rs(&root.join(top), &mut files)?;
    }
    files.sort();

    let mut sources: Vec<(String, String)> = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        sources.push((rel, std::fs::read_to_string(&path)?));
    }
    Ok(Report {
        findings: check_sources(&sources),
        files_checked: sources.len(),
    })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures` trees hold deliberate violations for the audit's
            // own tests; `vendor` and `target` are not ours to police.
            if name == "target" || name == "vendor" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// The rule catalog as `id — description` lines (for `darklight-audit
/// rules` and the CLI usage text), assembled dynamically from the
/// lexical catalog, the graph catalog, and the driver's meta-rules so
/// it can never drift from the code.
pub fn rule_listing() -> String {
    let mut by_id: BTreeMap<String, String> = BTreeMap::new();
    for rule in catalog() {
        by_id.insert(rule.id().to_string(), rule.description().to_string());
    }
    for rule in graph_rules::catalog() {
        by_id.insert(rule.id().to_string(), rule.description().to_string());
    }
    for (id, desc) in meta_rules() {
        by_id.insert(id.to_string(), desc.to_string());
    }
    let mut out = String::new();
    for (id, desc) in by_id {
        out.push_str(&format!("{id:<26} {desc}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_on_same_or_previous_line_suppresses() {
        let src = "fn f() {\n\
                   // audit:allow(no-naked-unwrap) -- invariant: x is Some by construction\n\
                   x.unwrap();\n\
                   y.unwrap(); // audit:allow(no-naked-unwrap) -- checked above\n\
                   z.unwrap();\n\
                   }\n";
        let findings = check_source("crates/core/src/a.rs", src);
        let unsuppressed: Vec<_> = findings.iter().filter(|f| !f.suppressed).collect();
        assert_eq!(findings.len(), 3);
        assert_eq!(unsuppressed.len(), 1);
        assert_eq!(unsuppressed[0].line, 5);
    }

    #[test]
    fn allow_without_reason_is_a_finding_and_does_not_suppress() {
        let src = "// audit:allow(no-naked-unwrap)\nfn f() { x.unwrap(); }\n";
        let findings = check_source("crates/core/src/a.rs", src);
        assert!(findings.iter().any(|f| f.rule == "bad-suppression"));
        assert!(findings
            .iter()
            .any(|f| f.rule == "no-naked-unwrap" && !f.suppressed));
    }

    #[test]
    fn allow_with_unknown_rule_is_flagged() {
        let src = "// audit:allow(no-such-rule) -- whatever\nfn f() {}\n";
        let findings = check_source("crates/core/src/a.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "bad-suppression");
        assert!(findings[0].message.contains("no-such-rule"));
    }

    #[test]
    fn allow_that_suppresses_nothing_is_stale() {
        let src = "// audit:allow(no-naked-unwrap) -- hedging against nothing\nfn f() {}\n";
        let findings = check_source("crates/core/src/a.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "stale-suppression");
        assert_eq!(findings[0].line, 1);
        assert!(!findings[0].suppressed);
        assert!(findings[0].message.contains("no-naked-unwrap"));
    }

    #[test]
    fn multi_rule_allow_is_stale_per_rule() {
        // One named rule fires, the other doesn't: only the dead half is
        // reported, naming the dead rule.
        let src = "fn f() {\n\
                   // audit:allow(no-naked-unwrap, nan-safe-ordering) -- only unwrap occurs\n\
                   x.unwrap();\n\
                   }\n";
        let findings = check_source("crates/core/src/a.rs", src);
        let stale: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "stale-suppression")
            .collect();
        assert_eq!(stale.len(), 1, "{findings:?}");
        assert!(stale[0].message.contains("nan-safe-ordering"));
        assert!(findings
            .iter()
            .any(|f| f.rule == "no-naked-unwrap" && f.suppressed));
    }

    #[test]
    fn stale_detection_skips_test_code_and_bad_allows() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   // audit:allow(no-naked-unwrap) -- tests may unwrap anyway\n\
                   fn t() { x.unwrap(); }\n}\n";
        assert!(check_source("crates/core/src/a.rs", src).is_empty());
        // A reasonless allow is bad-suppression, not also stale.
        let bad = check_source(
            "crates/core/src/a.rs",
            "// audit:allow(no-naked-unwrap)\nfn f() {}\n",
        );
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "bad-suppression");
    }

    #[test]
    fn graph_findings_flow_through_suppressions() {
        let src = "\
// audit:allow(estimate-bytes-coverage) -- metrics plumbing, not data\n\
pub struct Record { w: Widget }\n\
pub struct Widget { n: u64 }\n\
impl EstimateBytes for Widget { fn estimate_bytes(&self) -> u64 { 8 } }\n";
        let findings = check_source("crates/core/src/dataset.rs", src);
        let ebc: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "estimate-bytes-coverage")
            .collect();
        assert_eq!(ebc.len(), 1, "{findings:?}");
        assert!(ebc[0].suppressed, "allow on the def line must cover it");
        assert!(
            !findings.iter().any(|f| f.rule == "stale-suppression"),
            "a live graph suppression is not stale: {findings:?}"
        );
    }

    #[test]
    fn test_files_and_cfg_test_spans_are_exempt() {
        let src = "fn prod() { a.partial_cmp(&b); }\n\
                   #[cfg(test)]\nmod tests {\n  fn t() { c.partial_cmp(&d); }\n}\n";
        let findings = check_source("crates/eval/src/a.rs", src);
        assert_eq!(findings.len(), 1, "only the production site: {findings:?}");
        assert_eq!(findings[0].line, 1);
        assert!(check_source("tests/integration.rs", src).is_empty());
    }

    #[test]
    fn check_sources_sees_across_files() {
        let files = vec![
            (
                "crates/core/src/dataset.rs".to_string(),
                "pub struct Record { w: Widget }\n\
                 impl EstimateBytes for Record { fn estimate_bytes(&self) -> u64 { 0 } }\n\
                 pub struct Widget { n: u64 }\n"
                    .to_string(),
            ),
            (
                "crates/features/src/sizes.rs".to_string(),
                "impl EstimateBytes for Widget { fn estimate_bytes(&self) -> u64 { 8 } }\n"
                    .to_string(),
            ),
        ];
        // The impl in the *other* file satisfies coverage.
        let findings = check_sources(&files);
        assert!(
            !findings.iter().any(|f| f.rule == "estimate-bytes-coverage"),
            "{findings:?}"
        );
    }

    #[test]
    fn json_report_shape() {
        let report = Report {
            findings: check_source("crates/core/src/a.rs", "fn f() { x.unwrap(); }"),
            files_checked: 1,
        };
        let json = report.render_json();
        assert!(json.contains("\"unsuppressed_errors\": 1"));
        assert!(json.contains("\"rule\": \"no-naked-unwrap\""));
        let human = report.render_human();
        assert!(human.contains("crates/core/src/a.rs:1:11: error[no-naked-unwrap]"));
    }

    #[test]
    fn github_report_shape() {
        let report = Report {
            findings: check_source(
                "crates/core/src/a.rs",
                "fn f() { x.unwrap(); } // % literal\n",
            ),
            files_checked: 1,
        };
        let gh = report.render_github();
        assert!(
            gh.contains(
                "::error file=crates/core/src/a.rs,line=1,col=11,title=audit no-naked-unwrap::"
            ),
            "{gh}"
        );
        assert!(gh.contains("1 error(s)"));
    }

    #[test]
    fn rule_listing_is_dynamic_and_complete() {
        let listing = rule_listing();
        for rule in catalog() {
            assert!(listing.contains(rule.id()), "missing {}", rule.id());
        }
        for rule in graph_rules::catalog() {
            assert!(listing.contains(rule.id()), "missing {}", rule.id());
        }
        assert!(listing.contains("bad-suppression"));
        assert!(listing.contains("stale-suppression"));
    }
}
