//! The audit driver: walks the workspace, runs every rule on every
//! file, applies `audit:allow` suppressions, and renders the report.
//!
//! ## Suppression policy
//!
//! A finding is suppressed by a comment on the same line or the line
//! directly above:
//!
//! ```text
//! // audit:allow(rule-id) -- reason the invariant holds here
//! ```
//!
//! The reason is mandatory; an allow without one (or naming an unknown
//! rule) is itself a `bad-suppression` finding, and `bad-suppression`
//! cannot be suppressed. Suppressed findings still appear in `--json`
//! output with `"suppressed": true` so dashboards can track debt.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use darklight_obs::Json;

use crate::lexer::Scrubbed;
use crate::rules::{catalog, FileCtx, RawFinding};

/// A fully resolved finding.
#[derive(Debug)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Rule id (`bad-suppression` for malformed allows).
    pub rule: String,
    /// Explanation.
    pub message: String,
    /// Whether an `audit:allow` covered it.
    pub suppressed: bool,
}

/// The outcome of one audit run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, suppressed or not, in path/line order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
}

impl Report {
    /// Findings that fail the build.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// Human-readable rendering, one line per finding plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            if f.suppressed {
                continue;
            }
            out.push_str(&format!(
                "{}:{}:{}: error[{}]: {}\n",
                f.file, f.line, f.col, f.rule, f.message
            ));
        }
        let errors = self.unsuppressed().count();
        let suppressed = self.findings.len() - errors;
        out.push_str(&format!(
            "audit: {} file(s) checked, {} error(s), {} suppressed\n",
            self.files_checked, errors, suppressed
        ));
        out
    }

    /// JSON rendering (stable key order) for CI consumption.
    pub fn render_json(&self) -> String {
        let mut doc = Json::object();
        doc.set("files_checked", Json::UInt(self.files_checked as u64));
        doc.set(
            "unsuppressed_errors",
            Json::UInt(self.unsuppressed().count() as u64),
        );
        doc.set(
            "findings",
            Json::Array(
                self.findings
                    .iter()
                    .map(|f| {
                        let mut o = Json::object();
                        o.set("file", Json::Str(f.file.clone()));
                        o.set("line", Json::UInt(f.line as u64));
                        o.set("col", Json::UInt(f.col as u64));
                        o.set("rule", Json::Str(f.rule.clone()));
                        o.set("message", Json::Str(f.message.clone()));
                        o.set("suppressed", Json::Bool(f.suppressed));
                        o
                    })
                    .collect(),
            ),
        );
        doc.render_pretty()
    }
}

/// One parsed `audit:allow` comment.
#[derive(Debug)]
struct Allow {
    line: usize,
    rules: Vec<String>,
    has_reason: bool,
    /// Comment is the only content on its line. Only standalone allows
    /// reach the line below; a trailing allow covers its own line alone.
    standalone: bool,
}

/// Extracts `audit:allow(...)` annotations from a file's comments.
fn parse_allows(scrubbed: &Scrubbed) -> Vec<Allow> {
    let mut allows = Vec::new();
    for comment in &scrubbed.comments {
        // Only plain comments can suppress: doc comments (`///`, `//!`,
        // `/**`, `/*!`) merely *talk about* annotations.
        if comment.text.starts_with("///")
            || comment.text.starts_with("//!")
            || comment.text.starts_with("/**")
            || comment.text.starts_with("/*!")
        {
            continue;
        }
        let Some(start) = comment.text.find("audit:allow(") else {
            continue;
        };
        let after = &comment.text[start + "audit:allow(".len()..];
        let Some(close) = after.find(')') else {
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let tail = &after[close + 1..];
        let has_reason = tail
            .trim_start()
            .strip_prefix("--")
            .is_some_and(|reason| !reason.trim().is_empty());
        let (line, col) = scrubbed.line_col(comment.offset);
        let line_start = comment.offset - (col - 1);
        let standalone = scrubbed.text[line_start..comment.offset]
            .chars()
            .all(char::is_whitespace);
        allows.push(Allow {
            line,
            rules,
            has_reason,
            standalone,
        });
    }
    allows
}

/// Audits one file's source. Public so fixture tests can drive rules
/// against synthetic paths without touching the filesystem.
pub fn check_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let scrubbed = Scrubbed::new(source);
    let file_is_test = rel_path
        .split('/')
        .any(|part| part == "tests" || part == "benches" || part == "examples");
    let ctx = FileCtx {
        rel_path,
        scrubbed: &scrubbed,
        file_is_test,
    };
    let test_spans = scrubbed.test_spans();
    let allows = parse_allows(&scrubbed);
    let known_rules: Vec<&'static str> = catalog().iter().map(|r| r.id()).collect();

    let mut findings = Vec::new();

    // Malformed allows are findings in their own right.
    for allow in &allows {
        for rule in &allow.rules {
            if !known_rules.contains(&rule.as_str()) {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: allow.line,
                    col: 1,
                    rule: "bad-suppression".to_string(),
                    message: format!("audit:allow names unknown rule {rule:?}"),
                    suppressed: false,
                });
            }
        }
        if !allow.has_reason {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: allow.line,
                col: 1,
                rule: "bad-suppression".to_string(),
                message: "audit:allow without a reason: append `-- <why this is sound>`"
                    .to_string(),
                suppressed: false,
            });
        }
    }

    for rule in catalog() {
        if !rule.applies(&ctx) || (file_is_test && rule.skip_test_code()) {
            continue;
        }
        let mut raw: Vec<RawFinding> = Vec::new();
        rule.check(&ctx, &mut raw);
        for rf in raw {
            if rule.skip_test_code()
                && test_spans
                    .iter()
                    .any(|&(s, e)| rf.offset >= s && rf.offset < e)
            {
                continue;
            }
            let (line, col) = scrubbed.line_col(rf.offset);
            let suppressed = allows.iter().any(|a| {
                a.has_reason
                    && (a.line == line || (a.standalone && a.line + 1 == line))
                    && a.rules.iter().any(|r| r == rule.id())
            });
            findings.push(Finding {
                file: rel_path.to_string(),
                line,
                col,
                rule: rule.id().to_string(),
                message: rf.message,
                suppressed,
            });
        }
    }

    findings.sort_by_key(|f| (f.line, f.col));
    findings
}

/// Walks the workspace at `root` and audits every Rust source file.
///
/// # Errors
///
/// Returns the first I/O error encountered while walking or reading.
pub fn run(root: &Path) -> std::io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["crates", "src", "tests"] {
        collect_rs(&root.join(top), &mut files)?;
    }
    files.sort();

    let mut report = Report::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = std::fs::read_to_string(&path)?;
        report.findings.extend(check_source(&rel, &source));
        report.files_checked += 1;
    }
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures` trees hold deliberate violations for the audit's
            // own tests; `vendor` and `target` are not ours to police.
            if name == "target" || name == "vendor" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// The rule catalog as `id — description` lines (for `darklight-audit
/// rules`).
pub fn rule_listing() -> String {
    let mut by_id: BTreeMap<&'static str, &'static str> = BTreeMap::new();
    for rule in catalog() {
        by_id.insert(rule.id(), rule.description());
    }
    let mut out = String::new();
    for (id, desc) in by_id {
        out.push_str(&format!("{id:<26} {desc}\n"));
    }
    out.push_str("bad-suppression            audit:allow with no reason or an unknown rule id\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_on_same_or_previous_line_suppresses() {
        let src = "fn f() {\n\
                   // audit:allow(no-naked-unwrap) -- invariant: x is Some by construction\n\
                   x.unwrap();\n\
                   y.unwrap(); // audit:allow(no-naked-unwrap) -- checked above\n\
                   z.unwrap();\n\
                   }\n";
        let findings = check_source("crates/core/src/a.rs", src);
        let unsuppressed: Vec<_> = findings.iter().filter(|f| !f.suppressed).collect();
        assert_eq!(findings.len(), 3);
        assert_eq!(unsuppressed.len(), 1);
        assert_eq!(unsuppressed[0].line, 5);
    }

    #[test]
    fn allow_without_reason_is_a_finding_and_does_not_suppress() {
        let src = "// audit:allow(no-naked-unwrap)\nfn f() { x.unwrap(); }\n";
        let findings = check_source("crates/core/src/a.rs", src);
        assert!(findings.iter().any(|f| f.rule == "bad-suppression"));
        assert!(findings
            .iter()
            .any(|f| f.rule == "no-naked-unwrap" && !f.suppressed));
    }

    #[test]
    fn allow_with_unknown_rule_is_flagged() {
        let src = "// audit:allow(no-such-rule) -- whatever\nfn f() {}\n";
        let findings = check_source("crates/core/src/a.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "bad-suppression");
        assert!(findings[0].message.contains("no-such-rule"));
    }

    #[test]
    fn test_files_and_cfg_test_spans_are_exempt() {
        let src = "fn prod() { a.partial_cmp(&b); }\n\
                   #[cfg(test)]\nmod tests {\n  fn t() { c.partial_cmp(&d); }\n}\n";
        let findings = check_source("crates/eval/src/a.rs", src);
        assert_eq!(findings.len(), 1, "only the production site: {findings:?}");
        assert_eq!(findings[0].line, 1);
        assert!(check_source("tests/integration.rs", src).is_empty());
    }

    #[test]
    fn json_report_shape() {
        let report = Report {
            findings: check_source("crates/core/src/a.rs", "fn f() { x.unwrap(); }"),
            files_checked: 1,
        };
        let json = report.render_json();
        assert!(json.contains("\"unsuppressed_errors\": 1"));
        assert!(json.contains("\"rule\": \"no-naked-unwrap\""));
        let human = report.render_human();
        assert!(human.contains("crates/core/src/a.rs:1:11: error[no-naked-unwrap]"));
    }
}
