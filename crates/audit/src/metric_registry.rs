//! The central registry of metric names.
//!
//! Every metric the pipeline records through `darklight-obs` must be
//! listed here; the `metric-name-registry` audit rule rejects any
//! `counter("…")` / `gauge("…")` / `timer("…")` / `histogram("…")` call
//! whose literal name is missing, which turns a counter-name typo into a
//! CI failure instead of a silently forked time series. The registry is
//! cross-checked against the golden snapshot schema in
//! `tests/metrics_parity.rs` by `crates/audit/tests/registry_consistency.rs`.
//!
//! Dynamically built names (today only `ingest.quarantined.<kind>`)
//! cannot be checked at the call site — those sites carry an
//! `audit:allow(metric-name-registry)` annotation explaining how the
//! name set is bounded, and every possible expansion is listed here.

/// Every blessed metric name, sorted and unique (enforced by a test).
pub const METRIC_REGISTRY: &[&str] = &[
    "attrib.batch_queries",
    "attrib.batch_scoring",
    "attrib.index_build",
    "attrib.index_dim",
    "attrib.index_postings",
    "attrib.index_users",
    "attrib.postings_touched_per_query",
    "attrib.queries_scored",
    "batch.batch_size",
    "batch.final_pool_size",
    "batch.peak_pool",
    "batch.resumed",
    "batch.resumed_round",
    "batch.rounds",
    "batch.stalled",
    "batch.total",
    "bench.cells_run",
    "bench.known_aliases",
    "bench.link_parallel",
    "bench.link_serial",
    "bench.messages",
    "bench.positives",
    "bench.unknown_aliases",
    "bench.world_prep",
    "dataset.build",
    "dataset.records_built",
    "dataset.threads",
    "features.char_vocab",
    "features.dim",
    "features.fit",
    "features.fit_threads",
    "features.fits",
    "features.vector_nnz",
    "features.vectorize",
    "features.vectors",
    "features.word_vocab",
    "govern.batch_shrinks",
    "govern.bytes_estimated",
    "govern.deadline_expired",
    "govern.io_retries",
    "govern.tmp_cleaned",
    "ingest.lines_total",
    // Expansions of the dynamic `ingest.quarantined.<IssueKind>` name,
    // one per `IssueKind::as_str` value.
    "ingest.quarantined.bad_header",
    "ingest.quarantined.bad_record",
    "ingest.quarantined.orphan_record",
    "ingest.quarantined.unparseable_field",
    "ingest.quarantined_lines",
    "ingest.records_kept",
    "linker.fit_artifact",
    "linker.link",
    "linker.prepare",
    "par.worker_panics",
    "polish.dropped.bot_accounts",
    "polish.dropped.duplicates",
    "polish.dropped.emptied_users",
    "polish.dropped.low_diversity",
    "polish.dropped.non_english",
    "polish.dropped.panicked_users",
    "polish.dropped.short",
    "polish.input_messages",
    "polish.kept_messages",
    "polish.step.dedup",
    "polish.step.diversity_filter",
    "polish.step.language_filter",
    "polish.step.length_filter",
    "polish.step.transforms",
    "polish.threads",
    "polish.total",
    "store.crc_failures",
    "store.epoch_fallbacks",
    "store.loads",
    "store.saves",
    "twostage.links_accepted",
    "twostage.links_rejected",
    "twostage.rescored_unknowns",
    "twostage.stage1",
    "twostage.stage2",
    "twostage.threads",
    "twostage.threshold_micros",
    "twostage.total",
    "twostage.vectorize_panics",
];

/// Whether `name` is a blessed metric name.
pub fn is_registered(name: &str) -> bool {
    METRIC_REGISTRY.binary_search(&name).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        // Sortedness is load-bearing: `is_registered` binary-searches.
        for pair in METRIC_REGISTRY.windows(2) {
            assert!(pair[0] < pair[1], "{:?} out of order or duplicated", pair);
        }
    }

    #[test]
    fn lookup_works() {
        assert!(is_registered("linker.link"));
        assert!(is_registered("ingest.quarantined.orphan_record"));
        assert!(!is_registered("linker.lnik"));
        assert!(!is_registered(""));
    }
}
