//! Pins the CLI contract of `darklight-audit`: exit codes (0 clean,
//! 1 findings, 2 usage), the dynamic rule listing, and the `--format`
//! renderers CI consumes.

use std::path::Path;
use std::process::{Command, Output};

fn audit(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_darklight-audit"))
        .args(args)
        .output()
        .expect("spawn darklight-audit")
}

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_str()
        .expect("utf-8 path")
        .to_string()
}

#[test]
fn clean_tree_exits_zero() {
    let out = audit(&["check", "--root", &fixture("clean")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 error(s)"), "stdout: {stdout}");
}

#[test]
fn findings_exit_one_in_every_format() {
    for format in ["human", "json", "github"] {
        let out = audit(&["check", "--root", &fixture("graph"), "--format", format]);
        assert_eq!(out.status.code(), Some(1), "format {format}: {out:?}");
    }
    // JSON is machine-readable and names every firing rule.
    let out = audit(&["check", "--root", &fixture("graph"), "--format", "json"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "crate-layering",
        "estimate-bytes-coverage",
        "deadline-cooperation",
        "fingerprint-purity",
        "stale-suppression",
    ] {
        assert!(stdout.contains(rule), "json names {rule}: {stdout}");
    }
    // GitHub annotations carry file/line so CI can anchor them.
    let out = audit(&["check", "--root", &fixture("graph"), "--format", "github"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("::error file=crates/par/src/lib.rs,line=7,"),
        "stdout: {stdout}"
    );
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &["frobnicate"][..],
        &["check", "--format", "xml"][..],
        &["check", "--unknown-flag"][..],
    ] {
        let out = audit(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}: {out:?}");
    }
}

#[test]
fn rules_listing_is_dynamic_and_in_help() {
    let out = audit(&["rules"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let listing = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "nan-safe-ordering",
        "crate-layering",
        "stale-suppression",
        "bad-suppression",
    ] {
        assert!(listing.contains(rule), "listing names {rule}: {listing}");
    }
    // The usage text embeds the same listing, so help can never go
    // stale against the catalog.
    let usage = audit(&["frobnicate"]);
    let stderr = String::from_utf8_lossy(&usage.stderr);
    assert!(stderr.contains("crate-layering"), "stderr: {stderr}");
}
