//! Fixture-driven golden tests: each fixture file under
//! `tests/fixtures/` carries deliberate violations, string/comment
//! false-positive traps, and `audit:allow` suppressions; the expected
//! findings are pinned here as `(rule, line, suppressed)` triples.

use darklight_audit::check_source;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
}

/// Runs a fixture as if it lived at `rel_path`, returning
/// `(rule, line, suppressed)` triples sorted by line.
fn triples(rel_path: &str, name: &str) -> Vec<(String, usize, bool)> {
    let mut out: Vec<(String, usize, bool)> = check_source(rel_path, &fixture(name))
        .into_iter()
        .map(|f| (f.rule, f.line, f.suppressed))
        .collect();
    out.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));
    out
}

fn s(x: &str) -> String {
    x.to_string()
}

#[test]
fn naked_unwrap_fixture() {
    assert_eq!(
        triples("crates/core/src/naked_unwrap.rs", "naked_unwrap.rs"),
        vec![
            (s("no-naked-unwrap"), 5, false),
            (s("no-naked-unwrap"), 6, false),
            // Doc-comment mention, string trap, and unwrap_or: no findings.
            // cfg(test) module: no findings.
            (s("no-naked-unwrap"), 19, true),
        ]
    );
}

#[test]
fn unwrap_fixture_is_silent_outside_hot_paths() {
    // The same violations in a crate outside core/features don't apply.
    let findings = triples("crates/synth/src/naked_unwrap.rs", "naked_unwrap.rs");
    assert!(
        findings
            .iter()
            .all(|(rule, _, _)| rule != "no-naked-unwrap"),
        "{findings:?}"
    );
}

#[test]
fn nan_ordering_fixture() {
    assert_eq!(
        triples("crates/eval/src/nan_ordering.rs", "nan_ordering.rs"),
        vec![
            (s("nan-safe-ordering"), 5, false),
            (s("nan-safe-ordering"), 15, true),
        ]
    );
    // The blessed home is exempt.
    assert!(triples("crates/order/src/lib.rs", "nan_ordering.rs")
        .iter()
        .all(|(rule, _, _)| rule != "nan-safe-ordering"));
}

#[test]
fn ambient_fixture() {
    assert_eq!(
        triples("crates/core/src/ambient.rs", "ambient.rs"),
        vec![
            (s("no-ambient-time-or-rand"), 4, false),
            (s("no-ambient-time-or-rand"), 5, false),
            (s("no-ambient-time-or-rand"), 6, false),
            (s("no-ambient-time-or-rand"), 7, false),
        ]
    );
    // obs timers and the bench harness may read the clock.
    assert!(triples("crates/obs/src/lib.rs", "ambient.rs").is_empty());
    assert!(triples("crates/bench/src/experiments.rs", "ambient.rs").is_empty());
}

#[test]
fn iteration_fixture() {
    // Only the HashMap inside the fingerprint fn fires; the `use` line,
    // the ordinary fn, and the BTreeMap fingerprint fn stay silent.
    assert_eq!(
        triples("crates/core/src/iteration.rs", "iteration.rs"),
        vec![(s("deterministic-iteration"), 6, false)]
    );
}

#[test]
fn designated_snapshot_files_flag_hashmaps_anywhere() {
    let src = "fn helper() { let m: std::collections::HashMap<u8, u8> = Default::default(); }";
    let findings = check_source("crates/obs/src/json.rs", src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "deterministic-iteration");
}

#[test]
fn spawn_fixture() {
    assert_eq!(
        triples("crates/core/src/spawn.rs", "spawn.rs"),
        vec![
            (s("spawn-through-par"), 4, false),
            (s("spawn-through-par"), 6, false),
        ]
    );
    // darklight-par itself is the blessed home.
    assert!(triples("crates/par/src/lib.rs", "spawn.rs").is_empty());
}

#[test]
fn metrics_fixture() {
    assert_eq!(
        triples("crates/core/src/metrics.rs", "metrics.rs"),
        vec![
            (s("metric-name-registry"), 4, false),
            (s("metric-name-registry"), 5, false),
            (s("metric-name-registry"), 17, true),
        ]
    );
}

#[test]
fn suppression_fixture() {
    assert_eq!(
        triples("crates/core/src/suppression.rs", "suppression.rs"),
        vec![
            (s("bad-suppression"), 4, false),
            (s("no-naked-unwrap"), 5, false),
            (s("bad-suppression"), 9, false),
            (s("nan-safe-ordering"), 14, true),
            (s("no-naked-unwrap"), 14, true),
        ]
    );
}
