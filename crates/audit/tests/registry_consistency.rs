//! The metric-name registry must stay in lockstep with reality in both
//! directions: every name the golden schema test pins must be
//! registered, and every registered name must be anchored to a string
//! literal somewhere in the workspace (or belong to the one documented
//! dynamic family). CI runs this as the registry-consistency leg of the
//! audit job.

use std::path::{Path, PathBuf};

use darklight_audit::metric_registry::{is_registered, METRIC_REGISTRY};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

/// Pulls every `"dotted.metric.name"` literal out of a source string.
fn quoted_metric_names(source: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut rest = source;
    while let Some(start) = rest.find('"') {
        let tail = &rest[start + 1..];
        let Some(len) = tail.find('"') else { break };
        let candidate = &tail[..len];
        if candidate.contains('.')
            && !candidate.is_empty()
            && candidate
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
        {
            names.push(candidate.to_string());
        }
        rest = &tail[len + 1..];
    }
    names
}

#[test]
fn golden_schema_names_are_all_registered() {
    let parity = workspace_root().join("tests/metrics_parity.rs");
    let source = std::fs::read_to_string(&parity).expect("tests/metrics_parity.rs exists");
    let pinned = source
        .split("fn snapshot_schema_is_pinned")
        .nth(1)
        .expect("golden schema test present");
    let names: Vec<String> = quoted_metric_names(pinned)
        .into_iter()
        .filter(|n| n != "forum_a" && n != "forum_b")
        .collect();
    assert!(
        names.len() > 40,
        "schema extraction looks broken: {names:?}"
    );
    let missing: Vec<&String> = names.iter().filter(|n| !is_registered(n)).collect();
    assert!(
        missing.is_empty(),
        "golden-schema metrics absent from METRIC_REGISTRY: {missing:?}"
    );
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" && name != "vendor" && name != "fixtures" && !name.starts_with('.')
            {
                collect_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_registered_name_is_anchored_in_source() {
    let root = workspace_root();
    let mut files = Vec::new();
    for top in ["crates", "src", "tests"] {
        collect_rs(&root.join(top), &mut files);
    }
    // Skip the registry itself: it must not count as its own anchor.
    let registry_path = root.join("crates/audit/src/metric_registry.rs");
    let mut corpus = String::new();
    for file in &files {
        if *file == registry_path {
            continue;
        }
        corpus.push_str(&std::fs::read_to_string(file).expect("readable source"));
    }
    let orphans: Vec<&&str> = METRIC_REGISTRY
        .iter()
        .filter(|name| {
            // The quarantine family is emitted via format!(); its
            // expansions are registered from the closed IssueKind enum.
            !name.starts_with("ingest.quarantined.") && !corpus.contains(&format!("\"{name}\""))
        })
        .collect();
    assert!(
        orphans.is_empty(),
        "registry entries with no source anchor (stale?): {orphans:?}"
    );
}

#[test]
fn store_family_is_registered_and_anchored_in_the_store_crate() {
    // The durable-artifact counters are recorded inside darklight-store
    // (crates/store/src/epoch.rs), not through the usual pipeline crates;
    // this pins the family in both directions so a renamed counter there
    // cannot silently fork the time series.
    let epoch = workspace_root().join("crates/store/src/epoch.rs");
    let source = std::fs::read_to_string(&epoch).expect("crates/store/src/epoch.rs exists");
    // Only `counter("…")` call sites count: the store crate also names
    // fault-injection *sites* with dotted store.* literals, and those are
    // not metrics.
    let recorded: Vec<String> = source
        .lines()
        .filter(|l| l.contains(".counter("))
        .flat_map(quoted_metric_names)
        .filter(|n| n.starts_with("store."))
        .collect();
    assert!(
        !recorded.is_empty(),
        "store crate records no store.* metrics — anchor extraction broken?"
    );
    for name in &recorded {
        assert!(
            is_registered(name),
            "store crate records unregistered metric {name:?}"
        );
    }
    let registered: Vec<&&str> = METRIC_REGISTRY
        .iter()
        .filter(|n| n.starts_with("store."))
        .collect();
    assert_eq!(registered.len(), 4, "store family drifted: {registered:?}");
    for name in &registered {
        assert!(
            recorded.iter().any(|r| r == **name),
            "registered metric {name:?} is not recorded by the store crate"
        );
    }
}

#[test]
fn quarantine_expansions_match_the_issue_kind_enum() {
    // The dynamic family ingest.quarantined.<kind> is bounded by
    // IssueKind::label() in crates/corpus/src/io.rs; every label must be
    // registered and every registered expansion must still be a label.
    let io = workspace_root().join("crates/corpus/src/io.rs");
    let source = std::fs::read_to_string(&io).expect("crates/corpus/src/io.rs exists");
    let mut expansions: Vec<&str> = METRIC_REGISTRY
        .iter()
        .filter(|n| n.starts_with("ingest.quarantined."))
        .map(|n| &n["ingest.quarantined.".len()..])
        .collect();
    expansions.sort_unstable();
    assert!(
        !expansions.is_empty(),
        "quarantine family must be registered"
    );
    for kind in &expansions {
        assert!(
            source.contains(&format!("\"{kind}\"")),
            "registered expansion ingest.quarantined.{kind} has no matching IssueKind label"
        );
    }
}
