//! Pins the graph-rule fixtures: every rule in the cross-file family
//! has at least one firing and one passing construct under
//! `tests/fixtures/graph/`, and the clean fixture stays clean.
//!
//! The firing pins are exact `(file, line, rule)` triples so a drifting
//! span (an extractor regression, say) fails loudly rather than merely
//! moving a finding to a neighbouring line.

use std::path::Path;

use darklight_audit::driver;

fn fixture_root(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn graph_fixture_fires_every_rule_at_pinned_spans() {
    let report = driver::run(&fixture_root("graph")).expect("fixture tree is readable");
    assert_eq!(report.files_checked, 6);

    let errors: Vec<(String, usize, String)> = report
        .unsuppressed()
        .map(|f| (f.file.clone(), f.line, f.rule.clone()))
        .collect();
    let s = |v: &str| v.to_string();
    assert_eq!(
        errors,
        vec![
            (s("crates/core/src/batch.rs"), 9, s("deadline-cooperation")),
            (s("crates/core/src/batch.rs"), 13, s("deadline-cooperation")),
            (
                s("crates/core/src/dataset.rs"),
                11,
                s("estimate-bytes-coverage")
            ),
            (
                s("crates/core/src/fingerprint.rs"),
                7,
                s("fingerprint-purity")
            ),
            (s("crates/core/src/stale.rs"), 7, s("stale-suppression")),
            (s("crates/par/src/lib.rs"), 7, s("crate-layering")),
        ]
    );

    // The passing constructs stay silent: no finding on the
    // deadline-aware map (line 11), the polled loop (line 17), the
    // covered Record impl, the pure fingerprint, or the downward
    // `darklight_obs` edge (line 8 of the par fixture).
    assert!(!errors
        .iter()
        .any(|(f, l, _)| f == "crates/core/src/batch.rs" && (*l == 11 || *l >= 17)));
    assert!(!errors.iter().any(|(_, _, r)| r == "bad-suppression"));
    let messages: Vec<&str> = report.unsuppressed().map(|f| f.message.as_str()).collect();
    assert!(
        messages.iter().any(|m| m.contains("Record -> SideCar")),
        "coverage finding shows the reachability path: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m
            .contains("run_fingerprint -> mix -> stamp -> `resolve_threads` (thread-count read)")),
        "purity finding shows the contamination chain: {messages:?}"
    );

    // The live allow in stale.rs suppresses both ambient findings on its
    // line and is therefore NOT stale.
    let suppressed: Vec<&driver::Finding> =
        report.findings.iter().filter(|f| f.suppressed).collect();
    assert_eq!(suppressed.len(), 2, "{suppressed:?}");
    assert!(suppressed
        .iter()
        .all(|f| f.file == "crates/core/src/stale.rs" && f.line == 14));
}

#[test]
fn clean_fixture_is_clean() {
    let report = driver::run(&fixture_root("clean")).expect("fixture tree is readable");
    assert_eq!(report.files_checked, 1);
    assert_eq!(report.unsuppressed().count(), 0);
    assert!(report.findings.is_empty());
}
