//! Fixture: deterministic-iteration. HashMap is only an error inside
//! fingerprint functions (or the designated snapshot files).

use std::collections::{BTreeMap, HashMap};

fn run_fingerprint(items: &HashMap<String, u64>) -> u64 {
    // ^ finding: HashMap in a fingerprint fn's signature/body.
    let mut h = 0u64;
    for (k, v) in items {
        h = h.wrapping_add(k.len() as u64 ^ v);
    }
    h
}

fn ordinary(items: &HashMap<String, u64>) -> usize {
    // HashMap outside fingerprint code is allowed by this rule.
    items.len()
}

fn fingerprint_sorted(items: &BTreeMap<String, u64>) -> u64 {
    // BTreeMap in a fingerprint fn is the fix, not a finding.
    items.values().sum()
}
