//! Fixture: suppression policy.

fn reasonless(x: Option<u32>) -> u32 {
    // audit:allow(no-naked-unwrap)
    x.unwrap()
}

fn unknown_rule() {
    // audit:allow(no-such-rule) -- the rule id has a typo
}

fn multi_rule(x: Option<f64>, y: f64) -> bool {
    // audit:allow(no-naked-unwrap, nan-safe-ordering) -- fixture: one comment may cover several rules
    x.unwrap().partial_cmp(&y).is_some()
}
