//! Fixture: no-ambient-time-or-rand.

fn violations(start: std::time::Instant) {
    let _t = std::time::Instant::now(); // finding 1
    let _s = std::time::SystemTime::now(); // finding 2
    let _r = rand::thread_rng(); // finding 3
    let _e = start.elapsed(); // finding 4
}

fn negative() {
    // Instant::now mentioned in a comment is fine; so is the string:
    let _doc = "SystemTime::now is banned here";
}
