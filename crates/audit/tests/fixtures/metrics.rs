//! Fixture: metric-name-registry.

fn violations(m: &darklight_obs::PipelineMetrics, name: &str) {
    m.counter("linker.lnik").incr(); // finding: typo, not registered
    m.counter(name).incr(); // finding: dynamic name
}

fn negatives(m: &darklight_obs::PipelineMetrics) {
    m.counter("linker.link").incr(); // registered
    m.timer("twostage.total").record_ns(1); // registered
    let _doc = r#"counter("made.up.name") in a string is fine"#;
}

fn suppressed(m: &darklight_obs::PipelineMetrics, suffix: &str) {
    m
        // audit:allow(metric-name-registry) -- fixture: bounded by a closed enum
        .counter(&format!("ingest.quarantined.{suffix}"))
        .incr();
}
