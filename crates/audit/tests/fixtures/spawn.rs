//! Fixture: spawn-through-par.

fn violations() {
    let h = std::thread::spawn(|| 1 + 1); // one finding, not two
    let _ = h.join();
    std::thread::scope(|_s| {}); // second finding
}

fn negative() {
    // std::thread mentioned in a comment; "thread::spawn" in a string.
    let _doc = "thread::spawn is banned outside darklight-par";
}
