//! Graph fixture: estimate-bytes-coverage, passing side in `features`.
//!
//! `PreparedDoc` is a closure seed in a second crate; its impl lives
//! right next to it, so nothing fires here.

pub struct PreparedDoc {
    words: Vec<String>,
}

impl EstimateBytes for PreparedDoc {
    fn estimate_bytes(&self) -> u64 {
        self.words.len() as u64 * 24
    }
}
