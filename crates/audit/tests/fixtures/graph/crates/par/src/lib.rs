//! Graph fixture: crate-layering.
//!
//! `par` sits at layer 2. Referencing `core` (layer 4) is an upward
//! edge and must fire; referencing `obs` (layer 0) is downward and
//! must pass.

use darklight_core::batch::BatchConfig; // FIRE: upward edge (4 >= 2)
use darklight_obs::Metrics; // PASS: downward edge (0 < 2)

pub fn noop(_config: BatchConfig, _metrics: Metrics) {}
