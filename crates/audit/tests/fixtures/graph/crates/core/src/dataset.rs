//! Graph fixture: estimate-bytes-coverage.
//!
//! `Record` is a closure seed and carries an impl, so it passes;
//! `SideCar` is reached through `Record`'s fields but has no impl,
//! so it fires.

pub struct Record {
    side: SideCar,
}

pub struct SideCar {
    payload: Vec<u8>,
}

impl EstimateBytes for Record {
    fn estimate_bytes(&self) -> u64 {
        self.side.payload.len() as u64
    }
}
