//! Graph fixture: stale-suppression.
//!
//! The first allow names a rule that never fires on its span, so the
//! allow itself is the finding; the second genuinely suppresses an
//! ambient-clock finding and passes.

// audit:allow(no-naked-unwrap) -- stale by construction: nothing below unwraps
pub fn tidy(x: Option<u64>) -> u64 {
    x.map_or(0, |v| v)
}

pub fn clocked() -> bool {
    // audit:allow(no-ambient-time-or-rand) -- live by construction: the line below reads the clock
    std::time::Instant::now().elapsed().as_nanos() > 0
}
