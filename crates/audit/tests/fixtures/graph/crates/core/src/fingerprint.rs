//! Graph fixture: fingerprint-purity.
//!
//! `run_fingerprint` reaches a thread-count read two bare calls away,
//! so it fires with the full contamination chain; `pure_fingerprint`
//! is a pure function of its inputs and passes.

pub fn run_fingerprint(seed: u64) -> u64 {
    mix(seed)
}

fn mix(seed: u64) -> u64 {
    stamp(seed)
}

fn stamp(seed: u64) -> u64 {
    seed ^ resolve_threads(0) as u64
}

pub fn pure_fingerprint(seed: u64) -> u64 {
    seed.rotate_left(7) ^ 0x9e37_79b9
}
