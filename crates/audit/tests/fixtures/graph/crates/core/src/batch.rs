//! Graph fixture: deadline-cooperation.
//!
//! This path is one of the governed stage files, so bare parallel maps
//! and unpolled chunked loops must fire; the deadline-aware variants
//! must pass.

pub fn round(xs: &[u64], threads: usize, deadline: &Deadline) -> Vec<u64> {
    // FIRE: a bare par_map cannot be interrupted mid-stage.
    let a = darklight_par::par_map(xs, threads, |_, x| *x);
    // PASS: the deadline-aware map polls between items.
    let b = darklight_par::par_map_deadline(xs, threads, deadline, |_, x| *x);
    // FIRE: a chunked loop that never looks at its deadline.
    for batch in xs.chunks(8) {
        consume(batch);
    }
    // PASS: the same loop shape, polling at each round.
    for batch in xs.chunks(8) {
        if deadline.is_expired() {
            break;
        }
        consume(batch);
    }
    merge(a, b)
}
