//! Fixture: nan-safe-ordering. partial_cmp in this doc comment is not a
//! finding; neither is the raw string below.

fn violation(scores: &mut [f64]) {
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap()); // finding
}

fn negatives() -> &'static str {
    // partial_cmp mentioned in a comment only.
    r#"documentation about partial_cmp in a raw string"#
}

fn suppressed(a: f64, b: f64) -> bool {
    // audit:allow(nan-safe-ordering) -- fixture: result is discarded
    a.partial_cmp(&b).is_some()
}
