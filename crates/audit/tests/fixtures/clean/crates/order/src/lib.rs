//! Clean fixture: a file every rule passes, proving the audit exits 0
//! on a violation-free tree.

pub struct Pair {
    left: u64,
    right: u64,
}

pub fn smaller(p: &Pair) -> u64 {
    if p.left < p.right {
        p.left
    } else {
        p.right
    }
}
