//! Fixture: no-naked-unwrap. Calling .unwrap() in this doc comment must
//! not be flagged, nor may the string literal below.

fn violations(x: Option<u32>, y: Result<u32, ()>) -> u32 {
    let a = x.unwrap(); // finding 1
    let b = y.expect("boom"); // finding 2
    a + b
}

fn negatives(x: Option<u32>) -> u32 {
    // A mention of .unwrap() in a plain comment is not a finding.
    let s = "call .unwrap() and .expect(now)"; // string trap
    let t = x.unwrap_or(3); // unwrap_or is fine
    s.len() as u32 + t
}

fn suppressed(x: Option<u32>) -> u32 {
    // audit:allow(no-naked-unwrap) -- fixture: invariant documented here
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        Some(1).unwrap();
        let r: Result<u32, ()> = Ok(2);
        r.expect("fine in tests");
    }
}
