//! The audit must pass on its own workspace — this is the acceptance
//! criterion (`cargo run -p darklight-audit -- check` exits 0) in test
//! form, plus proof that a seeded violation *would* fail the build
//! without having to break the tree.

use std::path::Path;

use darklight_audit::{check_source, driver};

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn workspace_tree_is_clean() {
    let report = driver::run(&workspace_root()).expect("audit walk");
    assert!(report.files_checked > 50, "walk found the workspace");
    let errors: Vec<String> = report
        .unsuppressed()
        .map(|f| format!("{}:{}:{} [{}] {}", f.file, f.line, f.col, f.rule, f.message))
        .collect();
    assert!(
        errors.is_empty(),
        "unsuppressed audit findings in the tree:\n{}",
        errors.join("\n")
    );
}

#[test]
fn every_tree_suppression_carries_a_reason() {
    // bad-suppression findings are never suppressible, so a clean tree
    // already implies this; assert it directly for a sharper message.
    let report = driver::run(&workspace_root()).expect("audit walk");
    let bad: Vec<&darklight_audit::Finding> = report
        .findings
        .iter()
        .filter(|f| f.rule == "bad-suppression")
        .collect();
    assert!(bad.is_empty(), "reasonless/unknown audit:allow: {bad:?}");
}

#[test]
fn seeded_violation_fails_the_check() {
    // The CI job fails on any unsuppressed finding; demonstrate with a
    // seeded violation instead of breaking the tree.
    let findings = check_source(
        "crates/core/src/seeded.rs",
        "fn f(s: &mut [f64]) { s.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
    );
    assert!(
        findings.iter().any(|f| !f.suppressed),
        "seeded violation must produce an unsuppressed finding"
    );
    let report = darklight_audit::Report {
        findings,
        files_checked: 1,
    };
    assert!(report.render_json().contains("\"unsuppressed_errors\": 2"));
}

#[test]
fn rule_listing_names_every_rule() {
    let listing = driver::rule_listing();
    for id in [
        "no-naked-unwrap",
        "nan-safe-ordering",
        "no-ambient-time-or-rand",
        "deterministic-iteration",
        "spawn-through-par",
        "metric-name-registry",
        "bad-suppression",
    ] {
        assert!(listing.contains(id), "{id} missing from listing");
    }
}
