//! Property-based tests for the attribution engine.

use darklight_core::attrib::{rank_of, top_k_of, CandidateIndex};
use darklight_features::sparse::SparseVector;
use proptest::prelude::*;

fn vector_strategy() -> impl Strategy<Value = SparseVector> {
    proptest::collection::vec((0u32..2_000, 0.01f32..5.0), 1..60)
        .prop_map(|pairs| SparseVector::from_pairs(pairs).l2_normalized())
}

proptest! {
    /// Inverted-index scores equal pairwise dot products.
    #[test]
    fn index_scores_match_pairwise(
        vectors in proptest::collection::vec(vector_strategy(), 1..20),
        query in vector_strategy(),
    ) {
        let index = CandidateIndex::build(&vectors, 2_000);
        let scores = index.scores(&query);
        prop_assert_eq!(scores.len(), vectors.len());
        for (i, v) in vectors.iter().enumerate() {
            prop_assert!((scores[i] - query.dot(v)).abs() < 1e-5, "user {}", i);
        }
    }

    /// top_k is sorted descending, truncated, and consistent with scores.
    #[test]
    fn top_k_consistent(
        vectors in proptest::collection::vec(vector_strategy(), 1..20),
        query in vector_strategy(),
        k in 1usize..25,
    ) {
        let index = CandidateIndex::build(&vectors, 2_000);
        let top = index.top_k(&query, k);
        prop_assert!(top.len() <= k.min(vectors.len()));
        for w in top.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        // The top-1 really is the max.
        if let Some(first) = top.first() {
            let scores = index.scores(&query);
            let max = scores.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!((first.score - max).abs() < 1e-9);
        }
    }

    /// Batch scoring equals sequential scoring for any thread count,
    /// including query counts that do not divide evenly across threads
    /// (e.g. 7 queries on 3 threads leave a ragged final chunk).
    #[test]
    fn batch_matches_sequential(
        vectors in proptest::collection::vec(vector_strategy(), 1..12),
        queries in proptest::collection::vec(vector_strategy(), 0..20),
        k in 1usize..6,
        threads in 1usize..=8,
    ) {
        let index = CandidateIndex::build(&vectors, 2_000);
        let seq: Vec<_> = queries.iter().map(|q| index.top_k(q, k)).collect();
        let par = index.top_k_batch(&queries, k, threads);
        prop_assert_eq!(seq, par);
    }

    /// rank_of agrees with top_k_of ordering.
    #[test]
    fn rank_of_agrees_with_sort(scores in proptest::collection::vec(0.0f64..1.0, 1..30)) {
        let ranked = top_k_of(&scores, scores.len());
        for (pos, r) in ranked.iter().enumerate() {
            prop_assert_eq!(rank_of(&scores, r.index), Some(pos + 1));
        }
    }

    /// The same agreement holds when some scores are NaN: both functions
    /// share one total order (finite scores descending, NaN last).
    #[test]
    fn rank_of_agrees_with_sort_under_nan(
        tagged in proptest::collection::vec((0u8..5, 0.0f64..1.0), 1..30),
    ) {
        let scores: Vec<f64> = tagged
            .iter()
            .map(|&(tag, v)| if tag == 0 { f64::NAN } else { v })
            .collect();
        let ranked = top_k_of(&scores, scores.len());
        for (pos, r) in ranked.iter().enumerate() {
            prop_assert_eq!(rank_of(&scores, r.index), Some(pos + 1));
        }
    }

    /// Every index appears exactly once in a full ranking.
    #[test]
    fn full_ranking_is_permutation(scores in proptest::collection::vec(0.0f64..1.0, 1..30)) {
        let ranked = top_k_of(&scores, scores.len());
        let mut seen: Vec<usize> = ranked.iter().map(|r| r.index).collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..scores.len()).collect();
        prop_assert_eq!(seen, expected);
    }
}
