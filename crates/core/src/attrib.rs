//! Cosine ranking and k-attribution (§IV-C).
//!
//! With ~10,000 candidate aliases it is "neither practical to learn a
//! single classifier for 10,000 classes, nor … 10,000 one-versus-all
//! binary classifiers"; the paper ranks candidates by cosine similarity
//! instead. Vectors are unit-norm, so ranking reduces to sparse dot
//! products; the [`CandidateIndex`] stores the known aliases' vectors as an
//! inverted index (feature → postings) and scores a query in
//! O(Σ_{f ∈ query} |postings(f)|) — orders of magnitude faster than
//! pairwise dot products at forum scale. Query batches are scored in
//! parallel with scoped threads.

use darklight_features::sparse::SparseVector;

/// A ranked candidate: index into the known set plus cosine score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ranked {
    /// Index of the known alias.
    pub index: usize,
    /// Cosine similarity to the query (vectors are unit-norm).
    pub score: f64,
}

/// An inverted index over the known aliases' unit-norm feature vectors.
#[derive(Debug, Clone)]
pub struct CandidateIndex {
    postings: Vec<Vec<(u32, f32)>>,
    n_users: usize,
}

impl CandidateIndex {
    /// Builds the index. `dim` must exceed every feature index used by the
    /// vectors.
    ///
    /// # Panics
    ///
    /// Panics if a vector holds an index `>= dim`.
    pub fn build(vectors: &[SparseVector], dim: usize) -> CandidateIndex {
        let mut postings: Vec<Vec<(u32, f32)>> = vec![Vec::new(); dim];
        for (user, v) in vectors.iter().enumerate() {
            for (f, w) in v.iter() {
                postings[f as usize].push((user as u32, w));
            }
        }
        CandidateIndex {
            postings,
            n_users: vectors.len(),
        }
    }

    /// Number of indexed aliases.
    pub fn len(&self) -> usize {
        self.n_users
    }

    /// `true` when no aliases are indexed.
    pub fn is_empty(&self) -> bool {
        self.n_users == 0
    }

    /// Dot products (== cosine for unit-norm inputs) of `query` against
    /// every indexed alias.
    pub fn scores(&self, query: &SparseVector) -> Vec<f64> {
        let mut scores = vec![0.0f64; self.n_users];
        for (f, w) in query.iter() {
            if let Some(list) = self.postings.get(f as usize) {
                for &(user, wu) in list {
                    scores[user as usize] += w as f64 * wu as f64;
                }
            }
        }
        scores
    }

    /// The `k` best-scoring aliases for `query`, sorted by descending
    /// score (ties broken toward lower indices for determinism).
    pub fn top_k(&self, query: &SparseVector, k: usize) -> Vec<Ranked> {
        let scores = self.scores(query);
        top_k_of(&scores, k)
    }

    /// Scores a batch of queries across `threads` worker threads,
    /// preserving input order.
    pub fn top_k_batch(
        &self,
        queries: &[SparseVector],
        k: usize,
        threads: usize,
    ) -> Vec<Vec<Ranked>> {
        let threads = threads.max(1).min(queries.len().max(1));
        if threads == 1 || queries.len() < 4 {
            return queries.iter().map(|q| self.top_k(q, k)).collect();
        }
        let chunk = queries.len().div_ceil(threads);
        let mut results: Vec<Vec<Ranked>> = vec![Vec::new(); queries.len()];
        let mut slots: Vec<&mut [Vec<Ranked>]> = results.chunks_mut(chunk).collect();
        crossbeam::scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                let qs = &queries[i * chunk..(i * chunk + slot.len())];
                let index = &*self;
                s.spawn(move |_| {
                    for (out, q) in slot.iter_mut().zip(qs) {
                        *out = index.top_k(q, k);
                    }
                });
            }
        })
        .expect("scoring threads do not panic");
        results
    }
}

/// Extracts the top-k entries of a dense score vector.
pub fn top_k_of(scores: &[f64], k: usize) -> Vec<Ranked> {
    let mut ranked: Vec<Ranked> = scores
        .iter()
        .enumerate()
        .map(|(index, &score)| Ranked { index, score })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| a.index.cmp(&b.index))
    });
    ranked.truncate(k);
    ranked
}

/// The rank (1-based) of `target` in the scores, or `None` if tied-out of
/// range; used by accuracy@k computations.
pub fn rank_of(scores: &[f64], target: usize) -> Option<usize> {
    if target >= scores.len() {
        return None;
    }
    let t = scores[target];
    let better = scores
        .iter()
        .enumerate()
        .filter(|&(i, &s)| s > t || (s == t && i < target))
        .count();
    Some(better + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().copied()).l2_normalized()
    }

    fn sample_index() -> (CandidateIndex, Vec<SparseVector>) {
        let vectors = vec![
            vec_of(&[(0, 1.0), (1, 1.0)]),
            vec_of(&[(1, 1.0), (2, 1.0)]),
            vec_of(&[(3, 1.0)]),
        ];
        (CandidateIndex::build(&vectors, 8), vectors)
    }

    #[test]
    fn scores_match_pairwise_cosine() {
        let (index, vectors) = sample_index();
        let q = vec_of(&[(0, 1.0), (2, 1.0)]);
        let scores = index.scores(&q);
        for (i, v) in vectors.iter().enumerate() {
            assert!((scores[i] - q.cosine(v)).abs() < 1e-6, "user {i}");
        }
    }

    #[test]
    fn top_k_sorted_and_truncated() {
        let (index, _) = sample_index();
        let q = vec_of(&[(1, 1.0)]);
        let top = index.top_k(&q, 2);
        assert_eq!(top.len(), 2);
        assert!(top[0].score >= top[1].score);
        assert_eq!(top[0].index, 0); // tie with 1 broken toward lower index
    }

    #[test]
    fn top_k_larger_than_set() {
        let (index, _) = sample_index();
        let top = index.top_k(&vec_of(&[(0, 1.0)]), 10);
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn batch_matches_sequential() {
        let (index, vectors) = sample_index();
        let queries: Vec<SparseVector> = (0..40)
            .map(|i| vectors[i % vectors.len()].clone())
            .collect();
        let seq: Vec<Vec<Ranked>> = queries.iter().map(|q| index.top_k(q, 2)).collect();
        let par = index.top_k_batch(&queries, 2, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn self_query_scores_one() {
        let (index, vectors) = sample_index();
        for (i, v) in vectors.iter().enumerate() {
            let top = index.top_k(v, 1);
            assert_eq!(top[0].index, i);
            assert!((top[0].score - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_index() {
        let index = CandidateIndex::build(&[], 4);
        assert!(index.is_empty());
        assert!(index.top_k(&vec_of(&[(0, 1.0)]), 3).is_empty());
    }

    #[test]
    fn rank_of_positions() {
        let scores = [0.9, 0.5, 0.7];
        assert_eq!(rank_of(&scores, 0), Some(1));
        assert_eq!(rank_of(&scores, 2), Some(2));
        assert_eq!(rank_of(&scores, 1), Some(3));
        assert_eq!(rank_of(&scores, 9), None);
    }

    #[test]
    fn rank_of_tie_break() {
        let scores = [0.5, 0.5];
        assert_eq!(rank_of(&scores, 0), Some(1));
        assert_eq!(rank_of(&scores, 1), Some(2));
    }
}
