//! Cosine ranking and k-attribution (§IV-C).
//!
//! With ~10,000 candidate aliases it is "neither practical to learn a
//! single classifier for 10,000 classes, nor … 10,000 one-versus-all
//! binary classifiers"; the paper ranks candidates by cosine similarity
//! instead. Vectors are unit-norm, so ranking reduces to sparse dot
//! products; the [`CandidateIndex`] stores the known aliases' vectors as an
//! inverted index (feature → postings) and scores a query in
//! O(Σ_{f ∈ query} |postings(f)|) — orders of magnitude faster than
//! pairwise dot products at forum scale. Query batches are scored in
//! parallel with scoped threads.

use std::cmp::Ordering;

use darklight_features::sparse::SparseVector;
use darklight_obs::{Counter, Histogram, PipelineMetrics, Timer};

/// A ranked candidate: index into the known set plus cosine score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ranked {
    /// Index of the known alias.
    pub index: usize,
    /// Cosine similarity to the query (vectors are unit-norm).
    pub score: f64,
}

/// Pre-resolved instruments so the per-query hot path never touches the
/// registry. All of them are no-ops when built without metrics.
#[derive(Debug, Clone, Default)]
struct IndexInstruments {
    /// Postings-list entries walked per scored query.
    postings_touched: Histogram,
    /// Queries scored (single and batched).
    queries_scored: Counter,
    /// Wall-clock per `top_k_batch` call; with `batch_queries` this gives
    /// batch scoring throughput.
    batch_time: Timer,
    /// Queries submitted through `top_k_batch`.
    batch_queries: Counter,
}

/// An inverted index over the known aliases' unit-norm feature vectors.
#[derive(Debug, Clone)]
pub struct CandidateIndex {
    postings: Vec<Vec<(u32, f32)>>,
    n_users: usize,
    instruments: IndexInstruments,
}

impl CandidateIndex {
    /// Builds the index. `dim` must exceed every feature index used by the
    /// vectors.
    ///
    /// # Panics
    ///
    /// Panics if a vector holds an index `>= dim`.
    pub fn build(vectors: &[SparseVector], dim: usize) -> CandidateIndex {
        CandidateIndex::build_with_metrics(vectors, dim, &PipelineMetrics::disabled())
    }

    /// Like [`build`](CandidateIndex::build), recording build time and
    /// index shape into `metrics` and wiring per-query instruments.
    pub fn build_with_metrics(
        vectors: &[SparseVector],
        dim: usize,
        metrics: &PipelineMetrics,
    ) -> CandidateIndex {
        let _build = metrics.timer("attrib.index_build").start();
        let mut postings: Vec<Vec<(u32, f32)>> = vec![Vec::new(); dim];
        let mut nnz = 0u64;
        for (user, v) in vectors.iter().enumerate() {
            for (f, w) in v.iter() {
                postings[f as usize].push((user as u32, w));
                nnz += 1;
            }
        }
        metrics
            .gauge("attrib.index_users")
            .set(vectors.len() as i64);
        metrics.gauge("attrib.index_dim").set(dim as i64);
        metrics.counter("attrib.index_postings").add(nnz);
        CandidateIndex {
            postings,
            n_users: vectors.len(),
            instruments: IndexInstruments {
                postings_touched: metrics.histogram("attrib.postings_touched_per_query"),
                queries_scored: metrics.counter("attrib.queries_scored"),
                batch_time: metrics.timer("attrib.batch_scoring"),
                batch_queries: metrics.counter("attrib.batch_queries"),
            },
        }
    }

    /// Number of indexed aliases.
    pub fn len(&self) -> usize {
        self.n_users
    }

    /// `true` when no aliases are indexed.
    pub fn is_empty(&self) -> bool {
        self.n_users == 0
    }

    /// Dot products (== cosine for unit-norm inputs) of `query` against
    /// every indexed alias.
    pub fn scores(&self, query: &SparseVector) -> Vec<f64> {
        let mut scores = vec![0.0f64; self.n_users];
        let mut touched = 0u64;
        for (f, w) in query.iter() {
            if let Some(list) = self.postings.get(f as usize) {
                touched += list.len() as u64;
                for &(user, wu) in list {
                    scores[user as usize] += w as f64 * wu as f64;
                }
            }
        }
        self.instruments.postings_touched.record(touched);
        self.instruments.queries_scored.incr();
        scores
    }

    /// The `k` best-scoring aliases for `query`, sorted by descending
    /// score (ties broken toward lower indices for determinism).
    pub fn top_k(&self, query: &SparseVector, k: usize) -> Vec<Ranked> {
        let scores = self.scores(query);
        top_k_of(&scores, k)
    }

    /// Scores a batch of queries across `threads` worker threads,
    /// preserving input order (the shared [`darklight_par::par_map`]
    /// helper guarantees slot `i` holds query `i`'s result for every
    /// thread count, ragged tails included).
    pub fn top_k_batch(
        &self,
        queries: &[SparseVector],
        k: usize,
        threads: usize,
    ) -> Vec<Vec<Ranked>> {
        let _batch = self.instruments.batch_time.start();
        self.instruments.batch_queries.add(queries.len() as u64);
        darklight_par::par_map(queries, threads, |_, q| self.top_k(q, k))
    }
}

/// Descending total order over `(score, index)` pairs: higher scores
/// first, NaN after every real score, ties broken toward lower indices.
/// Shared by [`top_k_of`], [`rank_of`], and the stage-2 re-ranking so
/// every ranking in the pipeline agrees on ordering. Delegates to the
/// workspace-blessed [`darklight_order::cmp_desc_indexed`].
pub(crate) fn cmp_desc(a: (f64, usize), b: (f64, usize)) -> Ordering {
    darklight_order::cmp_desc_indexed(a, b)
}

/// Extracts the top-k entries of a dense score vector. NaN scores are
/// tolerated and rank below every real score.
pub fn top_k_of(scores: &[f64], k: usize) -> Vec<Ranked> {
    let mut ranked: Vec<Ranked> = scores
        .iter()
        .enumerate()
        .map(|(index, &score)| Ranked { index, score })
        .collect();
    ranked.sort_by(|a, b| cmp_desc((a.score, a.index), (b.score, b.index)));
    ranked.truncate(k);
    ranked
}

/// The rank (1-based) of `target` in the scores, or `None` if out of
/// range; used by accuracy@k computations. Uses the same ordering as
/// [`top_k_of`], so `rank_of(scores, t)` is exactly the position of `t`
/// in `top_k_of(scores, scores.len())`.
pub fn rank_of(scores: &[f64], target: usize) -> Option<usize> {
    if target >= scores.len() {
        return None;
    }
    let t = (scores[target], target);
    let better = scores
        .iter()
        .enumerate()
        .filter(|&(i, &s)| i != target && cmp_desc((s, i), t) == Ordering::Less)
        .count();
    Some(better + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().copied()).l2_normalized()
    }

    fn sample_index() -> (CandidateIndex, Vec<SparseVector>) {
        let vectors = vec![
            vec_of(&[(0, 1.0), (1, 1.0)]),
            vec_of(&[(1, 1.0), (2, 1.0)]),
            vec_of(&[(3, 1.0)]),
        ];
        (CandidateIndex::build(&vectors, 8), vectors)
    }

    #[test]
    fn scores_match_pairwise_cosine() {
        let (index, vectors) = sample_index();
        let q = vec_of(&[(0, 1.0), (2, 1.0)]);
        let scores = index.scores(&q);
        for (i, v) in vectors.iter().enumerate() {
            assert!((scores[i] - q.cosine(v)).abs() < 1e-6, "user {i}");
        }
    }

    #[test]
    fn top_k_sorted_and_truncated() {
        let (index, _) = sample_index();
        let q = vec_of(&[(1, 1.0)]);
        let top = index.top_k(&q, 2);
        assert_eq!(top.len(), 2);
        assert!(top[0].score >= top[1].score);
        assert_eq!(top[0].index, 0); // tie with 1 broken toward lower index
    }

    #[test]
    fn top_k_larger_than_set() {
        let (index, _) = sample_index();
        let top = index.top_k(&vec_of(&[(0, 1.0)]), 10);
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn batch_matches_sequential() {
        let (index, vectors) = sample_index();
        let queries: Vec<SparseVector> = (0..40)
            .map(|i| vectors[i % vectors.len()].clone())
            .collect();
        let seq: Vec<Vec<Ranked>> = queries.iter().map(|q| index.top_k(q, 2)).collect();
        let par = index.top_k_batch(&queries, 2, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn batch_with_ragged_final_chunk() {
        // 7 queries on 3 threads → chunks of 3, 3, 1; the short tail must
        // still land in the right output slots.
        let (index, vectors) = sample_index();
        let queries: Vec<SparseVector> =
            (0..7).map(|i| vectors[i % vectors.len()].clone()).collect();
        let seq: Vec<Vec<Ranked>> = queries.iter().map(|q| index.top_k(q, 2)).collect();
        let par = index.top_k_batch(&queries, 2, 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn self_query_scores_one() {
        let (index, vectors) = sample_index();
        for (i, v) in vectors.iter().enumerate() {
            let top = index.top_k(v, 1);
            assert_eq!(top[0].index, i);
            assert!((top[0].score - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_index() {
        let index = CandidateIndex::build(&[], 4);
        assert!(index.is_empty());
        assert!(index.top_k(&vec_of(&[(0, 1.0)]), 3).is_empty());
    }

    #[test]
    fn metrics_record_build_and_query_activity() {
        let metrics = PipelineMetrics::enabled();
        let vectors = vec![vec_of(&[(0, 1.0), (1, 1.0)]), vec_of(&[(1, 1.0)])];
        let index = CandidateIndex::build_with_metrics(&vectors, 4, &metrics);
        index.top_k(&vec_of(&[(1, 1.0)]), 1);
        assert_eq!(metrics.gauge("attrib.index_users").get(), 2);
        assert_eq!(metrics.gauge("attrib.index_dim").get(), 4);
        assert_eq!(metrics.counter("attrib.index_postings").get(), 3);
        assert_eq!(metrics.counter("attrib.queries_scored").get(), 1);
        // The query hits feature 1, whose postings list holds both users.
        assert_eq!(
            metrics.histogram("attrib.postings_touched_per_query").sum(),
            2
        );
        assert_eq!(metrics.timer("attrib.index_build").count(), 1);
    }

    #[test]
    fn top_k_of_tolerates_nan() {
        let scores = [0.3, f64::NAN, 0.9, f64::NAN, 0.0];
        let top = top_k_of(&scores, 5);
        let order: Vec<usize> = top.iter().map(|r| r.index).collect();
        assert_eq!(order, vec![2, 0, 4, 1, 3]); // NaNs last, index-ordered
    }

    #[test]
    fn rank_of_positions() {
        let scores = [0.9, 0.5, 0.7];
        assert_eq!(rank_of(&scores, 0), Some(1));
        assert_eq!(rank_of(&scores, 2), Some(2));
        assert_eq!(rank_of(&scores, 1), Some(3));
        assert_eq!(rank_of(&scores, 9), None);
    }

    #[test]
    fn rank_of_tie_break() {
        let scores = [0.5, 0.5];
        assert_eq!(rank_of(&scores, 0), Some(1));
        assert_eq!(rank_of(&scores, 1), Some(2));
    }

    #[test]
    fn cmp_desc_is_total_under_non_finite_scores() {
        // A sort comparator that is not a total order panics in the
        // standard library sort; mixing NaN and both infinities is the
        // worst case a zero-norm document can feed it.
        let scores = [
            f64::NAN,
            f64::NEG_INFINITY,
            0.5,
            f64::INFINITY,
            f64::NAN,
            0.0,
        ];
        let top = top_k_of(&scores, scores.len());
        let order: Vec<usize> = top.iter().map(|r| r.index).collect();
        // +inf first, then finite descending, -inf, NaNs last by index.
        assert_eq!(order, vec![3, 2, 5, 1, 0, 4]);
    }

    #[test]
    fn top_k_batch_tolerates_zero_norm_vectors() {
        // A document emptied by polishing vectorizes to the zero vector;
        // as index entry and as query it must score, not panic.
        let vectors = vec![
            vec_of(&[(0, 1.0), (1, 1.0)]),
            SparseVector::new(), // zero-norm known
            vec_of(&[(1, 2.0)]),
        ];
        let index = CandidateIndex::build(&vectors, 4);
        let queries = vec![vec_of(&[(1, 1.0)]), SparseVector::new()];
        let tops = index.top_k_batch(&queries, 3, 2);
        assert_eq!(tops.len(), 2);
        // Real query: the zero-norm candidate never outranks a scored one.
        assert!(tops[0].iter().all(|r| r.score.is_finite()));
        // Zero-norm query: nothing to score; whatever comes back is
        // finite or empty, never a panic.
        for r in &tops[1] {
            assert!(!r.score.is_nan(), "NaN leaked from zero-norm query");
        }
    }

    #[test]
    fn rank_of_agrees_with_top_k_under_nan() {
        let scores = [f64::NAN, 0.2, 0.8, f64::NAN, 0.2];
        let full = top_k_of(&scores, scores.len());
        for target in 0..scores.len() {
            let pos = full.iter().position(|r| r.index == target).unwrap() + 1;
            assert_eq!(rank_of(&scores, target), Some(pos), "target {target}");
        }
    }
}
