//! Persisted fit artifacts: the offline half of a fit-once/serve-many
//! split.
//!
//! A [`FitArtifact`] is everything stage 1 of the two-stage pipeline
//! computes from the *known* corpus: the prepared known [`Dataset`]
//! (stage 2 refits per unknown on its counted documents), the fitted
//! space-reduction [`FeatureSpace`], and the known aliases' stage-1
//! vectors. `darklight fit` persists it through `darklight-store`'s
//! epoch machinery; `darklight link --artifact` loads it and serves
//! queries without refitting — with output byte-identical to the
//! fit-every-time path (pinned by `tests/artifact_parity.rs`).
//!
//! ## Bit-exactness
//!
//! The encoding never serializes anything derived that floats through a
//! `HashMap` or a recomputation that could drift:
//!
//! * per record it stores the *selected text* and the activity
//!   *hour counts*; the prepared/counted documents are rebuilt with the
//!   same pure functions the fit used ([`PreparedDoc::prepare`],
//!   [`CountedDoc::from_prepared`]), and profile shares renormalize from
//!   the counts exactly;
//! * vocabularies are stored as terms in dense-index order plus
//!   document frequencies; IDF is recomputed by `TfIdf::fit`, a pure
//!   function of the vocabulary;
//! * every float crosses the disk as its IEEE-754 bit pattern.
//!
//! ## Integrity
//!
//! The container layer already rejects torn, truncated, or bit-flipped
//! files via per-section CRCs. On top of that, the artifact stores a
//! [FNV-1a](crate::checkpoint::Fnv1a) fingerprint of the fitted state
//! (schema version, reduction config, dataset contents, vector bits);
//! decode recomputes it from what was actually reconstructed and fails
//! with [`StoreError::FingerprintMismatch`] on any disagreement —
//! a last line of defence against semantic (not just byte-level)
//! corruption, and the artifact analogue of the checkpoint fingerprint.

use darklight_activity::profile::{DailyActivityProfile, HOURS};
use darklight_corpus::model::{Fact, FactKind};
use darklight_features::pipeline::{
    CountedDoc, FeatureConfig, FeatureExtractor, FeatureSpace, PreparedDoc,
};
use darklight_features::sparse::SparseVector;
use darklight_features::vocab::Vocabulary;
use darklight_store::codec::{Reader, Writer};
use darklight_store::{Container, EpochStore, StoreError};
use darklight_text::lemma::Lemmatizer;

use crate::batch::{hash_dataset, hash_feature_config};
use crate::checkpoint::Fnv1a;
use crate::dataset::{Dataset, Record};
use crate::twostage::TwoStageConfig;

/// Version of the artifact *schema* (what the sections mean), separate
/// from the container *format* version (how bytes are framed).
pub const ARTIFACT_VERSION: u32 = 1;

const SEC_META: &str = "meta";
const SEC_CONFIG: &str = "config";
const SEC_WORD_VOCAB: &str = "vocab.word";
const SEC_CHAR_VOCAB: &str = "vocab.char";
const SEC_KNOWN: &str = "known";
const SEC_VECTORS: &str = "vectors";

/// The persisted product of a stage-1 fit on the known corpus.
#[derive(Debug, Clone)]
pub struct FitArtifact {
    /// The prepared known dataset (stage 2 refits on its counted docs).
    pub known: Dataset,
    /// The fitted space-reduction feature space.
    pub space: FeatureSpace,
    /// Stage-1 vectors of `known.records`, in record order.
    pub known_vecs: Vec<SparseVector>,
}

impl FitArtifact {
    /// Runs the stage-1 fit the artifact captures: fit the reduction
    /// space on the known records (map-reduce over `threads` workers —
    /// identical to a serial fit for every count) and vectorize them in
    /// it. This is exactly what `TwoStage::reduce` computes before
    /// ranking, so serving from the artifact reproduces its candidates
    /// byte-for-byte.
    pub fn fit(config: &TwoStageConfig, known: Dataset) -> FitArtifact {
        let threads = config.effective_threads();
        let space = FeatureExtractor::new(config.reduction.clone())
            .with_metrics(config.metrics.clone())
            .with_threads(threads)
            .fit_counted(known.records.iter().map(|r| &r.counted));
        let known_vecs = darklight_par::par_map(&known.records, threads, |_, r| {
            space.vectorize_counted(&r.counted, r.profile.as_ref())
        });
        FitArtifact {
            known,
            space,
            known_vecs,
        }
    }

    /// The FNV-1a fingerprint of the fitted state: schema version,
    /// reduction config, the known dataset (name, orders, aliases,
    /// personas, facts, text, profiles), and every vector's bit
    /// pattern. Excluded, like the checkpoint fingerprint: metrics and
    /// thread counts, which never change output bytes.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(ARTIFACT_VERSION as u64);
        hash_feature_config(&mut h, self.space.config());
        hash_dataset(&mut h, &self.known);
        for r in &self.known.records {
            h.write_u64(r.facts.len() as u64);
            for f in &r.facts {
                h.write_str(f.kind.as_str());
                h.write_str(&f.value);
            }
        }
        h.write_u64(self.known_vecs.len() as u64);
        for v in &self.known_vecs {
            h.write_u64(v.nnz() as u64);
            for (i, x) in v.iter() {
                h.write_u64(i as u64);
                h.write(&x.to_bits().to_le_bytes());
            }
        }
        h.finish()
    }

    /// Encodes the artifact into a sectioned container.
    pub fn to_container(&self) -> Container {
        let mut c = Container::new(self.fingerprint());
        let mut meta = Writer::new();
        meta.put_u32(ARTIFACT_VERSION);
        c.push_section(SEC_META, meta.into_bytes());
        c.push_section(SEC_CONFIG, encode_config(self.space.config()));
        c.push_section(SEC_WORD_VOCAB, encode_vocab(self.space.word_vocab()));
        c.push_section(SEC_CHAR_VOCAB, encode_vocab(self.space.char_vocab()));
        c.push_section(SEC_KNOWN, encode_dataset(&self.known));
        c.push_section(SEC_VECTORS, encode_vectors(&self.known_vecs));
        c
    }

    /// Decodes an artifact, rebuilding the derived state (documents,
    /// counts, IDF) with `threads` workers and verifying the stored
    /// fingerprint against the reconstruction.
    ///
    /// # Errors
    ///
    /// [`StoreError::VersionMismatch`] for a foreign schema version,
    /// [`StoreError::MissingSection`]/[`StoreError::Malformed`] for
    /// structural damage the CRCs could not see (they protect bytes,
    /// not meaning), and [`StoreError::FingerprintMismatch`] when the
    /// reconstructed state does not hash to the stored fingerprint.
    pub fn from_container(c: &Container, threads: usize) -> Result<FitArtifact, StoreError> {
        let mut meta = Reader::new(c.section(SEC_META)?);
        let version = meta.get_u32()?;
        if version != ARTIFACT_VERSION {
            return Err(StoreError::VersionMismatch {
                expected: ARTIFACT_VERSION,
                found: version,
            });
        }
        let config = decode_config(c.section(SEC_CONFIG)?)?;
        let word_vocab = decode_vocab(c.section(SEC_WORD_VOCAB)?)?;
        let char_vocab = decode_vocab(c.section(SEC_CHAR_VOCAB)?)?;
        let known = decode_dataset(c.section(SEC_KNOWN)?, threads)?;
        let known_vecs = decode_vectors(c.section(SEC_VECTORS)?)?;
        if known_vecs.len() != known.len() {
            return Err(StoreError::Malformed(format!(
                "{} vectors for {} known records",
                known_vecs.len(),
                known.len()
            )));
        }
        let artifact = FitArtifact {
            known,
            space: FeatureSpace::from_parts(config, word_vocab, char_vocab),
            known_vecs,
        };
        let found = c.fingerprint;
        let expected = artifact.fingerprint();
        if expected != found {
            return Err(StoreError::FingerprintMismatch { expected, found });
        }
        Ok(artifact)
    }

    /// Publishes the artifact as a fresh epoch of `store`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure; previously published
    /// epochs are never damaged.
    pub fn save(&self, store: &EpochStore) -> Result<u64, StoreError> {
        store.publish(&self.to_container())
    }

    /// Loads the newest cleanly-decodable artifact from `store`,
    /// walking the epoch recovery ladder (a corrupt or mismatched
    /// current epoch falls back to the previous one). Returns the
    /// artifact and the epoch that served it.
    ///
    /// # Errors
    ///
    /// See [`EpochStore::load_with`]; decode errors from
    /// [`from_container`](FitArtifact::from_container) trigger fallback
    /// exactly like file corruption.
    pub fn load(store: &EpochStore, threads: usize) -> Result<(FitArtifact, u64), StoreError> {
        store.load_with(|c| FitArtifact::from_container(c, threads))
    }
}

fn encode_config(fc: &FeatureConfig) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(fc.max_word_n as u64);
    w.put_u64(fc.max_char_n as u64);
    w.put_u64(fc.top_word_ngrams as u64);
    w.put_u64(fc.top_char_ngrams as u64);
    w.put_f32_bits(fc.word_weight);
    w.put_f32_bits(fc.char_weight);
    w.put_f32_bits(fc.char_class_weight);
    w.put_f32_bits(fc.activity_weight);
    w.into_bytes()
}

fn decode_config(bytes: &[u8]) -> Result<FeatureConfig, StoreError> {
    let mut r = Reader::new(bytes);
    let fc = FeatureConfig {
        max_word_n: usize_field(r.get_u64()?, "max_word_n")?,
        max_char_n: usize_field(r.get_u64()?, "max_char_n")?,
        top_word_ngrams: usize_field(r.get_u64()?, "top_word_ngrams")?,
        top_char_ngrams: usize_field(r.get_u64()?, "top_char_ngrams")?,
        word_weight: r.get_f32_bits()?,
        char_weight: r.get_f32_bits()?,
        char_class_weight: r.get_f32_bits()?,
        activity_weight: r.get_f32_bits()?,
    };
    r.expect_end()?;
    Ok(fc)
}

fn usize_field(v: u64, what: &str) -> Result<usize, StoreError> {
    usize::try_from(v).map_err(|_| StoreError::Malformed(format!("{what} {v} overflows usize")))
}

/// Serializes a vocabulary as terms in dense-index order plus document
/// frequencies. Collecting the map's iterator and sorting by index is
/// what keeps the bytes deterministic despite `HashMap` storage.
fn encode_vocab(v: &Vocabulary) -> Vec<u8> {
    let mut pairs: Vec<(&str, u32)> = v.iter().collect();
    pairs.sort_unstable_by_key(|&(_, i)| i);
    let mut w = Writer::new();
    w.put_u32(v.num_docs());
    w.put_u64(pairs.len() as u64);
    for (term, i) in pairs {
        w.put_str(term);
        w.put_u32(v.doc_freq(i));
    }
    w.into_bytes()
}

fn decode_vocab(bytes: &[u8]) -> Result<Vocabulary, StoreError> {
    let mut r = Reader::new(bytes);
    let num_docs = r.get_u32()?;
    let count = r.get_count(8 + 4)?; // len prefix + doc_freq per term
    let mut terms = Vec::with_capacity(count);
    let mut doc_freq = Vec::with_capacity(count);
    for _ in 0..count {
        terms.push(r.get_str()?.to_string());
        doc_freq.push(r.get_u32()?);
    }
    r.expect_end()?;
    Vocabulary::from_parts(terms, doc_freq, num_docs)
        .ok_or_else(|| StoreError::Malformed("duplicate term in vocabulary".to_string()))
}

fn encode_dataset(ds: &Dataset) -> Vec<u8> {
    let (max_word_n, max_char_n) = ds.ngram_orders();
    let mut w = Writer::new();
    w.put_str(&ds.name);
    w.put_u64(max_word_n as u64);
    w.put_u64(max_char_n as u64);
    w.put_u64(ds.len() as u64);
    for r in &ds.records {
        w.put_str(&r.alias);
        match r.persona {
            Some(p) => {
                w.put_u8(1);
                w.put_u64(p);
            }
            None => w.put_u8(0),
        }
        w.put_u64(r.facts.len() as u64);
        for f in &r.facts {
            w.put_str(f.kind.as_str());
            w.put_str(&f.value);
        }
        w.put_str(&r.text);
        match &r.profile {
            Some(p) => {
                w.put_u8(1);
                for h in 0..HOURS {
                    w.put_u32(p.count(h));
                }
            }
            None => w.put_u8(0),
        }
    }
    w.into_bytes()
}

/// The stored fields of one record, before document reconstruction.
struct RawRecord {
    alias: String,
    persona: Option<u64>,
    facts: Vec<Fact>,
    text: String,
    profile: Option<DailyActivityProfile>,
}

fn decode_dataset(bytes: &[u8], threads: usize) -> Result<Dataset, StoreError> {
    let mut r = Reader::new(bytes);
    let name = r.get_str()?.to_string();
    let max_word_n = usize_field(r.get_u64()?, "max_word_n")?;
    let max_char_n = usize_field(r.get_u64()?, "max_char_n")?;
    if max_word_n == 0 || max_char_n == 0 {
        return Err(StoreError::Malformed("zero n-gram order".to_string()));
    }
    let count = r.get_count(8 + 1 + 8 + 8 + 1)?; // alias + persona + facts + text + profile flags
    let mut raw = Vec::with_capacity(count);
    for _ in 0..count {
        let alias = r.get_str()?.to_string();
        let persona = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_u64()?),
            other => {
                return Err(StoreError::Malformed(format!(
                    "persona flag must be 0 or 1, found {other}"
                )))
            }
        };
        let fact_count = r.get_count(8 + 8)?;
        let mut facts = Vec::with_capacity(fact_count);
        for _ in 0..fact_count {
            let kind = r.get_str()?;
            let kind = FactKind::parse(kind)
                .ok_or_else(|| StoreError::Malformed(format!("unknown fact kind {kind:?}")))?;
            facts.push(Fact::new(kind, r.get_str()?));
        }
        let text = r.get_str()?.to_string();
        let profile = match r.get_u8()? {
            0 => None,
            1 => {
                let mut counts = [0u32; HOURS];
                for c in counts.iter_mut() {
                    *c = r.get_u32()?;
                }
                Some(DailyActivityProfile::from_counts(counts).ok_or_else(|| {
                    StoreError::Malformed("all-zero activity profile".to_string())
                })?)
            }
            other => {
                return Err(StoreError::Malformed(format!(
                    "profile flag must be 0 or 1, found {other}"
                )))
            }
        };
        raw.push(RawRecord {
            alias,
            persona,
            facts,
            text,
            profile,
        });
    }
    r.expect_end()?;
    // Rebuild the derived document state with the same pure functions
    // the original dataset build used; per-record work is independent,
    // so output is identical for every thread count.
    let lemmatizer = Lemmatizer::new();
    let records = darklight_par::par_map(&raw, threads.max(1), |_, rr| {
        let doc = PreparedDoc::prepare(&rr.text, Some(&lemmatizer));
        let counted = CountedDoc::from_prepared(&doc, max_word_n, max_char_n);
        Record {
            alias: rr.alias.clone(),
            persona: rr.persona,
            facts: rr.facts.clone(),
            text: rr.text.clone(),
            doc,
            counted,
            profile: rr.profile.clone(),
        }
    });
    Ok(Dataset::with_orders(name, records, max_word_n, max_char_n))
}

fn encode_vectors(vecs: &[SparseVector]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(vecs.len() as u64);
    for v in vecs {
        w.put_u64(v.nnz() as u64);
        for (i, x) in v.iter() {
            w.put_u32(i);
            w.put_f32_bits(x);
        }
    }
    w.into_bytes()
}

fn decode_vectors(bytes: &[u8]) -> Result<Vec<SparseVector>, StoreError> {
    let mut r = Reader::new(bytes);
    let count = r.get_count(8)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let nnz = r.get_count(4 + 4)?;
        let mut pairs = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            let i = r.get_u32()?;
            let x = r.get_f32_bits()?;
            pairs.push((i, x));
        }
        out.push(SparseVector::from_pairs(pairs));
    }
    r.expect_end()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::twostage::TwoStage;
    use darklight_corpus::model::{Corpus, Post, User};

    fn known_corpus() -> Corpus {
        let mut c = Corpus::new("known");
        let base = 1_486_375_200i64;
        let styles = [
            ("alice", "gardening tulips compost seedling watering trowel"),
            ("bob", "overclocking motherboard thermals benchmark silicon"),
            ("carol", "sourdough hydration crumb proofing levain ovens"),
        ];
        for (pid, (name, vocab)) in styles.iter().enumerate() {
            let words: Vec<&str> = vocab.split(' ').collect();
            let mut u = User::new(*name, Some(pid as u64));
            if pid == 0 {
                u.facts.push(Fact::new(FactKind::City, "Edmonton"));
            }
            for i in 0..40i64 {
                let ts = base + (i / 5) * 7 * 86_400 + (i % 5) * 86_400 + pid as i64 * 3600;
                let w1 = words[i as usize % words.len()];
                let w2 = words[(i as usize + 2) % words.len()];
                u.posts.push(Post::new(
                    format!("today i worked on {w1} and compared {w2} methods before writing notes about {w1}"),
                    ts,
                ));
            }
            c.users.push(u);
        }
        c
    }

    fn fitted() -> FitArtifact {
        let ds = DatasetBuilder::new().build(&known_corpus());
        let config = TwoStageConfig {
            threads: 2,
            ..TwoStageConfig::default()
        };
        FitArtifact::fit(&config, ds)
    }

    fn assert_same_artifact(a: &FitArtifact, b: &FitArtifact) {
        assert_eq!(a.known, b.known);
        assert_eq!(a.known_vecs.len(), b.known_vecs.len());
        for (va, vb) in a.known_vecs.iter().zip(&b.known_vecs) {
            assert_eq!(va.nnz(), vb.nnz());
            for ((ia, xa), (ib, xb)) in va.iter().zip(vb.iter()) {
                assert_eq!(ia, ib);
                assert_eq!(xa.to_bits(), xb.to_bits());
            }
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn container_round_trip_is_bit_exact() {
        let artifact = fitted();
        let c = artifact.to_container();
        for threads in [1, 2, 7] {
            let back = FitArtifact::from_container(&c, threads).unwrap();
            assert_same_artifact(&artifact, &back);
            // The rebuilt space vectorizes identically.
            for (r, v) in artifact.known.records.iter().zip(&artifact.known_vecs) {
                let w = back.space.vectorize_counted(&r.counted, r.profile.as_ref());
                assert_eq!(v.nnz(), w.nnz());
                for ((ia, xa), (ib, xb)) in v.iter().zip(w.iter()) {
                    assert_eq!(ia, ib);
                    assert_eq!(xa.to_bits(), xb.to_bits());
                }
            }
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        let artifact = fitted();
        assert_eq!(
            artifact.to_container().to_bytes(),
            artifact.to_container().to_bytes()
        );
    }

    #[test]
    fn fingerprint_mismatch_is_typed() {
        let artifact = fitted();
        let mut c = artifact.to_container();
        c.fingerprint ^= 1;
        assert!(matches!(
            FitArtifact::from_container(&c, 1),
            Err(StoreError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn foreign_schema_version_is_typed() {
        let artifact = fitted();
        let mut c = artifact.to_container();
        let mut meta = Writer::new();
        meta.put_u32(99);
        c.sections[0].payload = meta.into_bytes();
        assert!(matches!(
            FitArtifact::from_container(&c, 1),
            Err(StoreError::VersionMismatch {
                expected: ARTIFACT_VERSION,
                found: 99
            })
        ));
    }

    #[test]
    fn missing_section_is_typed() {
        let artifact = fitted();
        let mut c = artifact.to_container();
        c.sections.retain(|s| s.tag != SEC_VECTORS);
        assert!(matches!(
            FitArtifact::from_container(&c, 1),
            Err(StoreError::MissingSection { .. })
        ));
    }

    #[test]
    fn tampered_payload_fails_the_fingerprint() {
        // Rewrite the vectors section with one flipped mantissa bit but
        // otherwise valid encoding: every CRC re-stamps clean, so only
        // the fingerprint can catch it.
        let artifact = fitted();
        let mut tampered = artifact.clone();
        let (i, x) = tampered.known_vecs[0].iter().next().unwrap();
        let mut pairs: Vec<(u32, f32)> = tampered.known_vecs[0].iter().collect();
        pairs[0] = (i, f32::from_bits(x.to_bits() ^ 1));
        tampered.known_vecs[0] = SparseVector::from_pairs(pairs);
        let mut c = tampered.to_container();
        c.fingerprint = artifact.fingerprint(); // forge the original print
        assert!(matches!(
            FitArtifact::from_container(&c, 1),
            Err(StoreError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn served_candidates_match_a_fresh_reduce() {
        let artifact = fitted();
        let unknown = DatasetBuilder::new().build(&{
            let mut c = known_corpus();
            for u in &mut c.users {
                u.alias = format!("{}_alt", u.alias);
            }
            c
        });
        let config = TwoStageConfig {
            k: 2,
            threads: 2,
            ..TwoStageConfig::default()
        };
        let engine = TwoStage::new(config);
        let fresh = engine.reduce(&artifact.known, &unknown);
        let served = engine.reduce_prefit(&artifact.space, &artifact.known_vecs, &unknown);
        assert_eq!(fresh.len(), served.len());
        for (a, b) in fresh.iter().zip(&served) {
            assert_eq!(a.len(), b.len());
            for (ra, rb) in a.iter().zip(b) {
                assert_eq!(ra.index, rb.index);
                assert_eq!(ra.score.to_bits(), rb.score.to_bits());
            }
        }
    }

    #[test]
    fn epoch_save_load_round_trips() {
        let root = std::env::temp_dir().join(format!("dl-artifact-epoch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        let store = EpochStore::new(root.clone());
        let artifact = fitted();
        let epoch = artifact.save(&store).unwrap();
        assert_eq!(epoch, 1);
        let (back, served) = FitArtifact::load(&store, 2).unwrap();
        assert_eq!(served, 1);
        assert_same_artifact(&artifact, &back);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
