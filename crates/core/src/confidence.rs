//! Match-confidence measures beyond the raw threshold.
//!
//! The paper accepts a pair whenever the best candidate's score clears a
//! global threshold. Verification practice (Koppel et al.'s unmasking
//! line of work) adds a second signal: how far the best candidate stands
//! *above the rest of the candidate set*. A best score of 0.90 means
//! little if the runner-up scored 0.89; it means a lot if the runner-up
//! scored 0.60. This module computes those gap statistics from a
//! [`RankedMatch`], enabling stricter acceptance rules for
//! investigation-grade output.

use crate::twostage::RankedMatch;

/// Confidence statistics for one unknown's best match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchConfidence {
    /// The best candidate's stage-2 score.
    pub best_score: f64,
    /// Gap to the runner-up (0 when there is only one candidate).
    pub margin: f64,
    /// Standard score of the best against the remaining candidates'
    /// distribution ((best − mean) / std); 0 when undefined.
    pub zscore: f64,
}

impl MatchConfidence {
    /// Computes confidence from a ranked match. `None` when no candidates
    /// exist.
    pub fn of(m: &RankedMatch) -> Option<MatchConfidence> {
        let best = m.stage2.first()?;
        let rest: Vec<f64> = m.stage2.iter().skip(1).map(|r| r.score).collect();
        let margin = rest.first().map_or(0.0, |second| best.score - second);
        let zscore = if rest.len() >= 2 {
            let mean = rest.iter().sum::<f64>() / rest.len() as f64;
            let var = rest.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / rest.len() as f64;
            if var > 0.0 {
                (best.score - mean) / var.sqrt()
            } else if best.score > mean {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            0.0
        };
        Some(MatchConfidence {
            best_score: best.score,
            margin,
            zscore,
        })
    }

    /// A stricter acceptance rule: the score must clear `min_score` *and*
    /// the margin must clear `min_margin` — suppressing the "everything in
    /// this forum looks alike" false positives a bare threshold admits.
    pub fn accept(&self, min_score: f64, min_margin: f64) -> bool {
        self.best_score >= min_score && self.margin >= min_margin
    }
}

/// Applies the margin-augmented rule to a result set, returning accepted
/// `(unknown, candidate, confidence)` triples.
pub fn accept_with_margin(
    results: &[RankedMatch],
    min_score: f64,
    min_margin: f64,
) -> Vec<(usize, usize, MatchConfidence)> {
    results
        .iter()
        .filter_map(|m| {
            let c = MatchConfidence::of(m)?;
            let best = m.best()?;
            c.accept(min_score, min_margin)
                .then_some((m.unknown, best.index, c))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrib::Ranked;

    fn rm(scores: &[f64]) -> RankedMatch {
        RankedMatch {
            unknown: 0,
            stage1: Vec::new(),
            stage2: scores
                .iter()
                .enumerate()
                .map(|(index, &score)| Ranked { index, score })
                .collect(),
        }
    }

    #[test]
    fn empty_has_no_confidence() {
        assert!(MatchConfidence::of(&rm(&[])).is_none());
    }

    #[test]
    fn single_candidate_zero_margin() {
        let c = MatchConfidence::of(&rm(&[0.8])).unwrap();
        assert_eq!(c.best_score, 0.8);
        assert_eq!(c.margin, 0.0);
        assert_eq!(c.zscore, 0.0);
    }

    #[test]
    fn margin_is_gap_to_runner_up() {
        let c = MatchConfidence::of(&rm(&[0.9, 0.6, 0.5])).unwrap();
        assert!((c.margin - 0.3).abs() < 1e-12);
        assert!(c.zscore > 3.0);
    }

    #[test]
    fn tight_pack_low_zscore() {
        let clear = MatchConfidence::of(&rm(&[0.9, 0.5, 0.48, 0.52, 0.49])).unwrap();
        let tight = MatchConfidence::of(&rm(&[0.9, 0.89, 0.88, 0.87, 0.86])).unwrap();
        assert!(clear.zscore > tight.zscore);
        assert!(clear.margin > tight.margin);
    }

    #[test]
    fn degenerate_equal_rest() {
        let c = MatchConfidence::of(&rm(&[0.9, 0.5, 0.5, 0.5])).unwrap();
        assert!(c.zscore.is_infinite());
        let flat = MatchConfidence::of(&rm(&[0.5, 0.5, 0.5, 0.5])).unwrap();
        assert_eq!(flat.zscore, 0.0);
    }

    #[test]
    fn accept_requires_both() {
        let c = MatchConfidence::of(&rm(&[0.9, 0.85])).unwrap();
        assert!(c.accept(0.8, 0.0));
        assert!(!c.accept(0.8, 0.1)); // margin too small
        assert!(!c.accept(0.95, 0.0)); // score too small
    }

    #[test]
    fn accept_with_margin_filters() {
        let results = vec![rm(&[0.9, 0.5]), rm(&[0.9, 0.89]), rm(&[0.6, 0.2])];
        let accepted = accept_with_margin(&results, 0.8, 0.1);
        assert_eq!(accepted.len(), 1);
        assert_eq!(accepted[0].1, 0); // best candidate index
    }
}
