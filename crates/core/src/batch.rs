//! RAM-bounded batch processing (§IV-J of the paper).
//!
//! When the known set is too large for memory, the paper splits it into
//! batches of `B` aliases, runs 10-attribution within each batch, pools the
//! per-batch survivors, and repeats until at most `B` candidates remain;
//! the final two-stage step then runs on that reduced set. Validated in
//! the paper with `B = 100`, giving precision 91% / recall 81% at the
//! global threshold — within a few points of the unbatched pipeline.
//!
//! Long batched runs are exactly the ones that get killed mid-flight, so
//! [`run_batched_checkpointed`] persists the survivor pools after every
//! round (see [`crate::checkpoint`]) and resumes from the last completed
//! round. Resumption is refused when the run fingerprint — config plus
//! dataset contents — does not match the checkpoint, because stale pools
//! against a changed corpus would rank confidently and wrongly.
//!
//! ## Resource governance
//!
//! Both entry points delegate to [`run_batched_governed`], which reads
//! the engine's [`darklight_govern::GovernConfig`] and supervises the
//! round loop:
//!
//! * **Budget** — [`BatchConfig::derive`] turns a byte budget into the
//!   largest admissible `B` under a conservative cost model (the unknown
//!   set is resident every round; each candidate in a batch costs its
//!   worst-case record estimate). Before every round the governor
//!   re-measures the *actual* upcoming round against the budget and
//!   halves `B` until it fits (the pressure ladder), recording
//!   `govern.batch_shrinks` and `govern.bytes_estimated`. `B` never
//!   grows back: shrinking is a memory-safety decision, re-growing
//!   would make output depend on when pressure happened to ease.
//! * **Deadline** — checked between rounds, between batches, and inside
//!   the parallel fan-out's chunk loops. Expiry abandons the partial
//!   round wholesale (so output stays thread-count-invariant) and
//!   surfaces [`darklight_govern::GovernError::DeadlineExpired`] with
//!   the last completed round's checkpoint intact on disk. The final
//!   rescore, once reached, always runs to completion.
//! * **Retries** — checkpoint saves/loads go through the governor's
//!   jittered-backoff retry, seeded by the run fingerprint.

use crate::attrib::Ranked;
use crate::checkpoint::{self, Checkpoint, CheckpointError, Fnv1a};
use crate::dataset::Dataset;
use crate::twostage::{RankedMatch, TwoStage};
use darklight_govern::{Deadline, EstimateBytes, Expired, GovernError, MemoryBudget};
use std::fmt;
use std::path::PathBuf;

/// Batched attribution configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchConfig {
    /// Maximum aliases the "hardware" can hold at once (paper: 100).
    pub batch_size: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig { batch_size: 100 }
    }
}

impl BatchConfig {
    /// Checks the configuration is runnable.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError::InvalidConfig`] when `batch_size` is zero —
    /// a zero batch can never admit a candidate, so the round loop could
    /// not terminate.
    pub fn validate(&self) -> Result<(), BatchError> {
        if self.batch_size == 0 {
            return Err(BatchError::InvalidConfig(
                "batch size must be positive".to_string(),
            ));
        }
        Ok(())
    }

    /// Derives the largest batch size admissible under `budget` for this
    /// known/unknown pair, replacing the hardcoded `B`.
    ///
    /// The model is deliberately conservative: a round must hold the
    /// unknown set ([`budget_overhead_bytes`]) plus one batch, and every
    /// batch member is charged the *worst-case* record cost
    /// ([`budget_per_candidate_bytes`]). Conservatism is what makes the
    /// governed-equals-fixed parity hold: the in-run measured estimate
    /// (actual batch contents, same units) can never exceed what
    /// derivation budgeted for, so a run under `--mem-budget X` never
    /// shrinks below `derive(X)` and stays byte-identical to the
    /// equivalent explicit `--batch-size`.
    ///
    /// # Errors
    ///
    /// [`GovernError::BudgetTooSmall`] when even a single-candidate
    /// batch does not fit; the message names the minimum viable budget.
    pub fn derive(
        budget: &MemoryBudget,
        known: &Dataset,
        unknown: &Dataset,
    ) -> Result<BatchConfig, GovernError> {
        let overhead = budget_overhead_bytes(unknown);
        let per = budget_per_candidate_bytes(known).max(1);
        let required = overhead.saturating_add(per);
        let admissible = budget
            .bytes()
            .checked_sub(overhead)
            .map_or(0, |room| room / per);
        if admissible == 0 {
            return Err(GovernError::BudgetTooSmall {
                budget: budget.bytes(),
                required,
            });
        }
        let batch_size = usize::try_from(admissible)
            .unwrap_or(usize::MAX)
            .min(known.len().max(1));
        Ok(BatchConfig { batch_size })
    }
}

/// Bytes resident in every round regardless of batch size: the unknown
/// dataset, which each round vectorizes against the batch.
pub fn budget_overhead_bytes(unknown: &Dataset) -> u64 {
    unknown.estimate_bytes()
}

/// Worst-case bytes one known candidate adds to a round: the largest
/// record estimate in the dataset. A record's estimate includes its
/// n-gram counting maps, which bound the per-round vector block built
/// from them (a sparse vector holds at most one entry per distinct
/// counted term — see `SparseVector::estimate_bytes`).
pub fn budget_per_candidate_bytes(known: &Dataset) -> u64 {
    known
        .records
        .iter()
        .map(EstimateBytes::estimate_bytes)
        .max()
        .unwrap_or(0)
}

/// Errors from batched attribution.
#[derive(Debug)]
pub enum BatchError {
    /// The [`BatchConfig`] fails [`BatchConfig::validate`].
    InvalidConfig(String),
    /// Loading or saving the checkpoint failed, or the checkpoint belongs
    /// to a different run.
    Checkpoint(CheckpointError),
    /// The run stopped after [`CheckpointSpec::interrupt_after_rounds`]
    /// rounds; the checkpoint on disk holds the state reached so far.
    Interrupted {
        /// Total rounds completed (including any resumed ones).
        rounds_done: u64,
    },
    /// The resource governor stopped the run (deadline expired, budget
    /// infeasible); checkpointed progress, if any, remains on disk.
    Govern(GovernError),
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::InvalidConfig(why) => write!(f, "invalid batch config: {why}"),
            BatchError::Checkpoint(e) => write!(f, "{e}"),
            BatchError::Interrupted { rounds_done } => {
                write!(
                    f,
                    "interrupted after {rounds_done} rounds (checkpoint saved)"
                )
            }
            BatchError::Govern(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchError::Checkpoint(e) => Some(e),
            BatchError::Govern(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for BatchError {
    fn from(e: CheckpointError) -> BatchError {
        BatchError::Checkpoint(e)
    }
}

impl From<GovernError> for BatchError {
    fn from(e: GovernError) -> BatchError {
        BatchError::Govern(e)
    }
}

/// Where (and whether) a checkpointed run persists its state.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Checkpoint file; written after every round, removed on success.
    pub path: PathBuf,
    /// Fault-injection hook: stop with [`BatchError::Interrupted`] after
    /// this many rounds *in this process* (the round's checkpoint is
    /// saved first). Simulates a kill mid-run for resume tests; `None`
    /// in production.
    pub interrupt_after_rounds: Option<u64>,
}

impl CheckpointSpec {
    /// A production spec: checkpoint at `path`, never self-interrupt.
    pub fn new(path: impl Into<PathBuf>) -> CheckpointSpec {
        CheckpointSpec {
            path: path.into(),
            interrupt_after_rounds: None,
        }
    }
}

/// Runs the hierarchical batched pipeline: batched k-attribution rounds
/// until the candidate pool fits one batch, then the standard second stage.
///
/// Delegates to [`run_batched_governed`] without a checkpoint; the
/// engine's governor (budget/deadline) still applies.
///
/// # Errors
///
/// Returns [`BatchError::InvalidConfig`] when `config` fails validation,
/// and [`BatchError::Govern`] when the engine's governor stops the run;
/// no other error is possible without a checkpoint.
pub fn run_batched(
    engine: &TwoStage,
    config: &BatchConfig,
    known: &Dataset,
    unknown: &Dataset,
) -> Result<Vec<RankedMatch>, BatchError> {
    run_batched_governed(engine, config, known, unknown, None)
}

/// [`run_batched`] with crash recovery: the survivor pools are persisted
/// to `spec.path` after every round, and a valid checkpoint there is
/// resumed instead of starting over. On success the checkpoint file is
/// removed. Delegates to [`run_batched_governed`].
///
/// # Errors
///
/// Returns [`BatchError::InvalidConfig`] on a bad config;
/// [`BatchError::Checkpoint`] when the checkpoint cannot be read or
/// written, or when its fingerprint does not match this run (config or
/// corpus changed — delete the file to start fresh);
/// [`BatchError::Interrupted`] when the test-only interrupt hook fires;
/// and [`BatchError::Govern`] when the engine's governor stops the run.
pub fn run_batched_checkpointed(
    engine: &TwoStage,
    config: &BatchConfig,
    known: &Dataset,
    unknown: &Dataset,
    spec: &CheckpointSpec,
) -> Result<Vec<RankedMatch>, BatchError> {
    run_batched_governed(engine, config, known, unknown, Some(spec))
}

/// The single batched driver: every entry point funnels here, so this is
/// the one place that validates the config (a zero batch size from a
/// deserialized config could otherwise re-enter a non-terminating round
/// loop) and consults the engine's governor (see the module docs).
///
/// `spec` enables crash recovery; checkpoint I/O goes through the
/// governor's retry policy with backoff jitter seeded by the run
/// fingerprint, so retried runs replay the same schedule.
///
/// # Errors
///
/// Everything [`run_batched_checkpointed`] documents, plus
/// [`BatchError::Govern`] for budget infeasibility ([`BatchConfig::derive`]
/// failures surface earlier, in the linker) and deadline expiry.
pub fn run_batched_governed(
    engine: &TwoStage,
    config: &BatchConfig,
    known: &Dataset,
    unknown: &Dataset,
    spec: Option<&CheckpointSpec>,
) -> Result<Vec<RankedMatch>, BatchError> {
    config.validate()?;
    let metrics = &engine.config().metrics;
    let govern = &engine.config().govern;
    let _total = metrics.timer("batch.total").start();
    metrics
        .gauge("batch.batch_size")
        .set(config.batch_size as i64);
    let ctx = spec.map(|s| (s, run_fingerprint(engine, config, known, unknown)));
    let (mut survivors, mut rounds_done) = match &ctx {
        None => (fresh_pools(known, unknown), 0),
        Some((spec, fingerprint)) => {
            // Checkpoint hygiene: a crash between the tmp write and the
            // rename leaves a stale sibling behind. It was never named
            // `spec.path`, so it holds no recoverable state — remove it
            // before this run starts writing its own tmp files there.
            let stale = spec.path.with_extension("tmp");
            if stale.exists() && std::fs::remove_file(&stale).is_ok() {
                metrics.counter("govern.tmp_cleaned").incr();
            }
            match checkpoint::load_retrying(&spec.path, &govern.retry, *fingerprint, metrics)? {
                Some(ck) => {
                    if ck.fingerprint != *fingerprint {
                        return Err(BatchError::Checkpoint(
                            CheckpointError::FingerprintMismatch {
                                expected: *fingerprint,
                                found: ck.fingerprint,
                            },
                        ));
                    }
                    if ck.survivors.len() != unknown.len()
                        || ck.survivors.iter().flatten().any(|&i| i >= known.len())
                    {
                        return Err(BatchError::Checkpoint(CheckpointError::Malformed(format!(
                            "checkpoint pools do not fit the datasets ({} pools for {} unknowns)",
                            ck.survivors.len(),
                            unknown.len()
                        ))));
                    }
                    metrics.counter("batch.resumed").incr();
                    metrics
                        .gauge("batch.resumed_round")
                        .set(ck.rounds_done as i64);
                    (ck.survivors, ck.rounds_done)
                }
                None => (fresh_pools(known, unknown), 0),
            }
        }
    };
    let resumed_at = rounds_done;
    run_rounds(
        engine,
        config,
        known,
        unknown,
        &mut survivors,
        &mut rounds_done,
        |done, pools| {
            let Some((spec, fingerprint)) = &ctx else {
                return Ok(());
            };
            checkpoint::save_retrying(
                &spec.path,
                &Checkpoint {
                    fingerprint: *fingerprint,
                    rounds_done: done,
                    survivors: pools.to_vec(),
                },
                &govern.retry,
                *fingerprint,
                metrics,
            )?;
            if let Some(limit) = spec.interrupt_after_rounds {
                if done - resumed_at >= limit {
                    return Err(BatchError::Interrupted { rounds_done: done });
                }
            }
            Ok(())
        },
    )?;
    let out = finalize(engine, known, unknown, &survivors);
    if let Some((spec, _)) = &ctx {
        checkpoint::remove(&spec.path);
    }
    Ok(out)
}

/// Fingerprint identifying a batched run: engine config (`k`, threshold,
/// both feature stages), batch size, and both datasets' contents (names,
/// n-gram orders, aliases, personas, selected text, activity profiles).
///
/// Deliberately excluded: the metrics handle (enabling `--metrics` never
/// changes output — pinned by `tests/metrics_parity.rs` — so it must not
/// invalidate a checkpoint) and the thread count (output is
/// thread-count-invariant — pinned by `tests/thread_parity.rs`).
pub fn run_fingerprint(
    engine: &TwoStage,
    config: &BatchConfig,
    known: &Dataset,
    unknown: &Dataset,
) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(checkpoint::CHECKPOINT_VERSION);
    h.write_u64(config.batch_size as u64);
    let ec = engine.config();
    h.write_u64(ec.k as u64);
    h.write(&ec.threshold.to_bits().to_le_bytes());
    hash_feature_config(&mut h, &ec.reduction);
    hash_feature_config(&mut h, &ec.final_stage);
    hash_dataset(&mut h, known);
    hash_dataset(&mut h, unknown);
    h.finish()
}

pub(crate) fn hash_feature_config(h: &mut Fnv1a, fc: &darklight_features::pipeline::FeatureConfig) {
    h.write_u64(fc.max_word_n as u64);
    h.write_u64(fc.max_char_n as u64);
    h.write_u64(fc.top_word_ngrams as u64);
    h.write_u64(fc.top_char_ngrams as u64);
    for w in [
        fc.word_weight,
        fc.char_weight,
        fc.char_class_weight,
        fc.activity_weight,
    ] {
        h.write(&w.to_bits().to_le_bytes());
    }
}

pub(crate) fn hash_dataset(h: &mut Fnv1a, ds: &Dataset) {
    h.write_str(&ds.name);
    let (max_word_n, max_char_n) = ds.ngram_orders();
    h.write_u64(max_word_n as u64);
    h.write_u64(max_char_n as u64);
    h.write_u64(ds.len() as u64);
    for r in &ds.records {
        h.write_str(&r.alias);
        match r.persona {
            Some(p) => {
                h.write(&[1]);
                h.write_u64(p);
            }
            None => h.write(&[0]),
        }
        h.write_str(&r.text);
        // The derived Debug form is deterministic and covers every field
        // that feeds the activity feature block.
        match &r.profile {
            Some(p) => h.write_str(&format!("{p:?}")),
            None => h.write(&[0]),
        }
    }
}

fn fresh_pools(known: &Dataset, unknown: &Dataset) -> Vec<Vec<usize>> {
    vec![(0..known.len()).collect(); unknown.len()]
}

/// Peak per-batch footprint of the upcoming round: the largest sum of
/// per-record estimates over any single batch of any pool. The pressure
/// ladder compares this (plus the fixed overhead) against the budget.
fn peak_round_bytes(pools: &[Vec<usize>], record_bytes: &[u64], batch_size: usize) -> u64 {
    pools
        .iter()
        .flat_map(|pool| {
            pool.chunks(batch_size)
                .map(|chunk| chunk.iter().map(|&i| record_bytes[i]).sum::<u64>())
        })
        .max()
        .unwrap_or(0)
}

/// The round loop shared by every entry point. `after_round` runs once
/// per completed round (checkpointing hook); its error aborts the run
/// with the pools already updated in place. The engine's governor is
/// consulted here: the deadline at round boundaries (and cooperatively
/// inside rounds), the memory budget before each round via the pressure
/// ladder described in the module docs.
fn run_rounds<F>(
    engine: &TwoStage,
    config: &BatchConfig,
    known: &Dataset,
    unknown: &Dataset,
    survivors: &mut Vec<Vec<usize>>,
    rounds_done: &mut u64,
    mut after_round: F,
) -> Result<(), BatchError>
where
    F: FnMut(u64, &[Vec<usize>]) -> Result<(), BatchError>,
{
    let metrics = &engine.config().metrics;
    let govern = &engine.config().govern;
    let deadline = &govern.deadline;
    let rounds = metrics.counter("batch.rounds");
    let peak_pool = metrics.gauge("batch.peak_pool");
    // Per-record byte estimates, computed once; the ladder re-measures
    // every round because pools shrink and batches re-chunk as B halves.
    let measure: Option<(u64, Vec<u64>)> = govern.budget.map(|_| {
        (
            budget_overhead_bytes(unknown),
            known
                .records
                .iter()
                .map(EstimateBytes::estimate_bytes)
                .collect(),
        )
    });
    let mut batch_size = config.batch_size;
    // Iterate rounds until every unknown's pool fits in one batch. Each
    // round applies k-attribution within batches of B. A round maps each
    // pool to a subset of itself, so pools shrink monotonically — but
    // when `batch_size <= k` every batch keeps all its members and the
    // pool is a fixed point. A round that changes nothing would repeat
    // forever (the map is deterministic), so bail out and let the final
    // stage rescore the oversized pools instead of hanging.
    loop {
        let max_pool = survivors.iter().map(Vec::len).max().unwrap_or(0);
        peak_pool.set_max(max_pool as i64);
        if max_pool <= batch_size {
            break;
        }
        if deadline.check(*rounds_done).is_err() {
            metrics.counter("govern.deadline_expired").incr();
            return Err(BatchError::Govern(GovernError::DeadlineExpired {
                rounds_done: *rounds_done,
            }));
        }
        // Pressure ladder: measure the upcoming round's peak batch
        // footprint and halve B until it fits the budget (floor 1: at
        // B = 1 the round runs best-effort). B never grows back, so a
        // governed run's round structure is a deterministic function of
        // the corpus and the budget, never of transient timing.
        if let (Some(budget), Some((overhead, record_bytes))) = (govern.budget, &measure) {
            loop {
                let measured = overhead + peak_round_bytes(survivors, record_bytes, batch_size);
                metrics
                    .gauge("govern.bytes_estimated")
                    .set_max(measured as i64);
                if measured <= budget.bytes() || batch_size <= 1 {
                    break;
                }
                batch_size = (batch_size / 2).max(1);
                metrics.counter("govern.batch_shrinks").incr();
                metrics.gauge("batch.batch_size").set(batch_size as i64);
            }
        }
        rounds.incr();
        let before = survivors.clone();
        // A mid-round expiry discards the whole round's partial work —
        // all-or-nothing — so the surviving pools (and any checkpoint)
        // only ever hold completed rounds, keeping resumed output bytes
        // independent of where the clock ran out and of thread count.
        let expired = |done: u64| {
            metrics.counter("govern.deadline_expired").incr();
            BatchError::Govern(GovernError::DeadlineExpired { rounds_done: done })
        };
        // All unknowns share rounds but pools can differ after round one;
        // in round one all pools are identical, afterwards k·ceil(n/B)
        // shrinks fast. Process per unknown-group with identical pools to
        // reuse fits: in practice pools stay identical across unknowns
        // only in round one, so round two onward we just batch per unknown.
        let identical = survivors.windows(2).all(|w| w[0] == w[1]);
        if identical && !survivors.is_empty() {
            let pool = survivors[0].clone();
            *survivors = batched_round(engine, batch_size, known, unknown, &pool, None, deadline)
                .map_err(|_| expired(*rounds_done))?;
        } else {
            // Divergent pools: each unknown reduces against its own pool,
            // independently of the others — fan the per-unknown rounds out
            // over the worker pool, keeping pool order by construction.
            let threads = engine.config().effective_threads();
            *survivors =
                darklight_par::par_map_deadline(survivors, threads, deadline, |u, pool| {
                    batched_round(engine, batch_size, known, unknown, pool, Some(u), deadline).map(
                        |pools| {
                            pools
                                .into_iter()
                                .next()
                                // audit:allow(no-naked-unwrap) -- batched_round with Some(u) returns exactly one pool by construction
                                .expect("one unknown processed")
                        },
                    )
                })
                .map_err(|_| expired(*rounds_done))?
                .into_iter()
                .collect::<Result<Vec<Vec<usize>>, Expired>>()
                .map_err(|_| expired(*rounds_done))?;
        }
        let stalled = *survivors == before;
        if stalled {
            metrics.counter("batch.stalled").incr();
        }
        *rounds_done += 1;
        after_round(*rounds_done, survivors)?;
        deadline.tick_round();
        if stalled {
            break;
        }
    }
    Ok(())
}

/// Final stage: rescore each unknown against its surviving pool.
fn finalize(
    engine: &TwoStage,
    known: &Dataset,
    unknown: &Dataset,
    survivors: &[Vec<usize>],
) -> Vec<RankedMatch> {
    let metrics = &engine.config().metrics;
    let pool_sizes = metrics.histogram("batch.final_pool_size");
    for pool in survivors {
        pool_sizes.record(pool.len() as u64);
    }
    let stage1: Vec<Vec<Ranked>> = survivors
        .iter()
        .enumerate()
        .map(|(u, pool)| {
            if pool.is_empty() {
                return Vec::new();
            }
            let sub = subset(known, pool);
            let one = subset_one(unknown, u);
            let reduced = engine.reduce(&sub, &one);
            reduced[0]
                .iter()
                .take(engine.config().k)
                .map(|r| Ranked {
                    index: pool[r.index],
                    score: r.score,
                })
                .collect()
        })
        .collect();
    engine.rescore(known, unknown, stage1)
}

/// One batched k-attribution round over `pool`. When `only` is given, only
/// that unknown is scored (used when pools diverge); otherwise all
/// unknowns are scored and the function returns one new pool per unknown.
///
/// Checks `deadline` before each batch so an expired run stops within one
/// batch of work; the partial round is discarded by the caller.
fn batched_round(
    engine: &TwoStage,
    batch_size: usize,
    known: &Dataset,
    unknown: &Dataset,
    pool: &[usize],
    only: Option<usize>,
    deadline: &Deadline,
) -> Result<Vec<Vec<usize>>, Expired> {
    let n_unknown = if only.is_some() { 1 } else { unknown.len() };
    let mut new_pools: Vec<Vec<usize>> = vec![Vec::new(); n_unknown];
    for batch in pool.chunks(batch_size) {
        if deadline.is_expired() {
            return Err(Expired);
        }
        let sub = subset(known, batch);
        let uset = match only {
            Some(u) => subset_one(unknown, u),
            None => unknown.clone(),
        };
        let reduced = engine.reduce(&sub, &uset);
        for (slot, ranked) in new_pools.iter_mut().zip(reduced) {
            for r in ranked.iter().take(engine.config().k) {
                slot.push(batch[r.index]);
            }
        }
    }
    for p in &mut new_pools {
        p.sort_unstable();
        p.dedup();
    }
    Ok(new_pools)
}

fn subset(ds: &Dataset, indices: &[usize]) -> Dataset {
    let (max_word_n, max_char_n) = ds.ngram_orders();
    Dataset::with_orders(
        ds.name.clone(),
        indices.iter().map(|&i| ds.records[i].clone()).collect(),
        max_word_n,
        max_char_n,
    )
}

fn subset_one(ds: &Dataset, index: usize) -> Dataset {
    subset(ds, &[index])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::twostage::TwoStageConfig;
    use darklight_corpus::model::{Corpus, Post, User};

    /// Twelve authors with distinct vocabularies; known + unknown halves.
    fn world() -> (Dataset, Dataset) {
        let vocabs = [
            "kayak paddle rapids portage",
            "espresso grinder portafilter crema",
            "orchid repotting perlite humidity",
            "violin rosin luthier vibrato",
            "falconry jesses tiercel mews",
            "pottery kiln glaze stoneware",
            "beekeeping hive frames nectar",
            "origami crease valley tessellation",
            "astronomy nebula telescope eyepiece",
            "fencing parry riposte piste",
            "calligraphy nib flourish gouache",
            "mycology spores substrate fruiting",
        ];
        let mut known = Corpus::new("known");
        let mut unknown = Corpus::new("unknown");
        let base = 1_486_375_200i64;
        for (pid, vocab) in vocabs.iter().enumerate() {
            let words: Vec<&str> = vocab.split(' ').collect();
            for (half, corpus) in [(0usize, &mut known), (1, &mut unknown)] {
                let mut u = User::new(format!("user{pid}_{half}"), Some(pid as u64));
                for i in 0..35i64 {
                    let ts = base + (i / 5) * 7 * 86_400 + (i % 5) * 86_400;
                    let w1 = words[i as usize % words.len()];
                    let w2 = words[(i as usize + 1) % words.len()];
                    u.posts.push(Post::new(
                        format!("my notes about {w1} mention the {w2} setup and more {w1} details for the club"),
                        ts,
                    ));
                }
                corpus.users.push(u);
            }
        }
        let b = DatasetBuilder::new();
        (b.build(&known), b.build(&unknown))
    }

    fn engine() -> TwoStage {
        TwoStage::new(TwoStageConfig {
            k: 3,
            threads: 2,
            ..TwoStageConfig::default()
        })
    }

    fn ckpt_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("darklight_batch_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn batched_matches_true_authors() {
        let (known, unknown) = world();
        let results =
            run_batched(&engine(), &BatchConfig { batch_size: 4 }, &known, &unknown).unwrap();
        for m in &results {
            let best = m.best().expect("candidates exist");
            assert_eq!(
                known.records[best.index].persona, unknown.records[m.unknown].persona,
                "unknown {}",
                m.unknown
            );
        }
    }

    #[test]
    fn batched_agrees_with_unbatched_on_top_match() {
        let (known, unknown) = world();
        let e = engine();
        let unbatched = e.run(&known, &unknown);
        let batched = run_batched(&e, &BatchConfig { batch_size: 5 }, &known, &unknown).unwrap();
        for (a, b) in unbatched.iter().zip(&batched) {
            assert_eq!(
                a.best().map(|r| r.index),
                b.best().map(|r| r.index),
                "unknown {}",
                a.unknown
            );
        }
    }

    #[test]
    fn huge_batch_equals_single_round() {
        let (known, unknown) = world();
        let e = engine();
        let batched = run_batched(
            &e,
            &BatchConfig {
                batch_size: known.len() + 10,
            },
            &known,
            &unknown,
        )
        .unwrap();
        let unbatched = e.run(&known, &unknown);
        for (a, b) in unbatched.iter().zip(&batched) {
            assert_eq!(a.best().map(|r| r.index), b.best().map(|r| r.index));
        }
    }

    #[test]
    fn metrics_track_rounds_and_pools() {
        use darklight_obs::PipelineMetrics;
        let (known, unknown) = world();
        let metrics = PipelineMetrics::enabled();
        let e = TwoStage::new(TwoStageConfig {
            k: 3,
            threads: 2,
            metrics: metrics.clone(),
            ..TwoStageConfig::default()
        });
        run_batched(&e, &BatchConfig { batch_size: 4 }, &known, &unknown).unwrap();
        // Twelve known aliases in batches of four need at least one
        // reduction round before pools fit a single batch.
        assert!(metrics.counter("batch.rounds").get() >= 1);
        assert_eq!(metrics.gauge("batch.peak_pool").get(), known.len() as i64);
        assert_eq!(
            metrics.histogram("batch.final_pool_size").count(),
            unknown.len() as u64
        );
        assert_eq!(metrics.timer("batch.total").count(), 1);
    }

    #[test]
    fn batch_no_larger_than_k_terminates() {
        // With batch_size <= k every batch keeps all its members, so no
        // round can shrink the pool; the stall guard must break out
        // instead of looping forever, and the final stage still ranks
        // every unknown against its (oversized) pool.
        use darklight_obs::PipelineMetrics;
        let (known, unknown) = world();
        let metrics = PipelineMetrics::enabled();
        let e = TwoStage::new(TwoStageConfig {
            k: 3,
            threads: 2,
            metrics: metrics.clone(),
            ..TwoStageConfig::default()
        });
        let results = run_batched(&e, &BatchConfig { batch_size: 3 }, &known, &unknown).unwrap();
        assert_eq!(metrics.counter("batch.stalled").get(), 1);
        assert_eq!(results.len(), unknown.len());
        for m in &results {
            let best = m.best().expect("candidates exist");
            assert_eq!(
                known.records[best.index].persona,
                unknown.records[m.unknown].persona
            );
        }
    }

    #[test]
    fn empty_documents_flow_through_batched_pipeline() {
        // An alias whose every post is empty vectorizes to the zero
        // vector (no n-grams, no activity profile) — the classic NaN
        // factory. It must ride through reduction, rescoring, and the
        // batched driver without panicking, in both roles.
        let (mut known_c, mut unknown_c) = (Corpus::new("known"), Corpus::new("unknown"));
        let base = 1_486_375_200i64;
        let vocabs = [
            "kayak paddle rapids portage",
            "espresso grinder portafilter crema",
            "orchid repotting perlite humidity",
        ];
        for (pid, vocab) in vocabs.iter().enumerate() {
            let words: Vec<&str> = vocab.split(' ').collect();
            for (half, corpus) in [(0usize, &mut known_c), (1, &mut unknown_c)] {
                let mut u = User::new(format!("user{pid}_{half}"), Some(pid as u64));
                for i in 0..20i64 {
                    let ts = base + i * 86_400;
                    let w = words[i as usize % words.len()];
                    u.posts
                        .push(Post::new(format!("more notes about {w} today"), ts));
                }
                corpus.users.push(u);
            }
        }
        for (alias, corpus) in [
            ("ghost_known", &mut known_c),
            ("ghost_unknown", &mut unknown_c),
        ] {
            let mut ghost = User::new(alias, None);
            ghost.posts.push(Post::new("", base));
            corpus.users.push(ghost);
        }
        let b = DatasetBuilder::new();
        let (known, unknown) = (b.build(&known_c), b.build(&unknown_c));
        let e = engine();
        let ranked = run_batched(&e, &BatchConfig { batch_size: 2 }, &known, &unknown).unwrap();
        assert_eq!(ranked.len(), unknown.len());
        // No NaN escapes into the final rankings' accepted candidates,
        // and every real unknown still finds its true author.
        for m in &ranked {
            for r in &m.stage2 {
                assert!(!r.score.is_nan(), "NaN leaked for unknown {}", m.unknown);
            }
        }
        for m in ranked.iter().take(vocabs.len()) {
            let best = m.best().expect("candidates exist");
            assert_eq!(
                known.records[best.index].persona,
                unknown.records[m.unknown].persona
            );
        }
    }

    #[test]
    fn zero_batch_is_a_typed_error() {
        let (known, unknown) = world();
        let err =
            run_batched(&engine(), &BatchConfig { batch_size: 0 }, &known, &unknown).unwrap_err();
        assert!(
            matches!(&err, BatchError::InvalidConfig(why) if why.contains("positive")),
            "{err}"
        );
    }

    #[test]
    fn checkpointed_run_matches_plain_and_cleans_up() {
        let (known, unknown) = world();
        let e = engine();
        let config = BatchConfig { batch_size: 4 };
        let plain = run_batched(&e, &config, &known, &unknown).unwrap();
        let spec = CheckpointSpec::new(ckpt_path("clean_run.json"));
        let ck = run_batched_checkpointed(&e, &config, &known, &unknown, &spec).unwrap();
        assert_eq!(plain, ck);
        assert!(!spec.path.exists(), "checkpoint removed on success");
    }

    #[test]
    fn stale_tmp_from_crashed_save_is_cleaned_at_start() {
        use darklight_obs::PipelineMetrics;
        let (known, unknown) = world();
        let metrics = PipelineMetrics::enabled();
        let e = TwoStage::new(TwoStageConfig {
            k: 3,
            threads: 2,
            metrics: metrics.clone(),
            ..TwoStageConfig::default()
        });
        let config = BatchConfig { batch_size: 4 };
        let spec = CheckpointSpec::new(ckpt_path("stale_tmp.json"));
        checkpoint::remove(&spec.path);
        let stale = spec.path.with_extension("tmp");
        std::fs::write(&stale, b"half-written garbage from a crashed save").unwrap();
        let plain = run_batched(&e, &config, &known, &unknown).unwrap();
        let ck = run_batched_checkpointed(&e, &config, &known, &unknown, &spec).unwrap();
        assert_eq!(plain, ck, "stale tmp must not perturb the run");
        assert!(!stale.exists(), "stale tmp file removed at startup");
        assert_eq!(metrics.counter("govern.tmp_cleaned").get(), 1);
    }

    #[test]
    fn interrupted_run_resumes_to_identical_output() {
        let (known, unknown) = world();
        let e = engine();
        // batch_size 2 with k=3 stalls after one round, which still
        // exercises save + resume; batch_size 4 gives real multi-round
        // shrinkage. Use 4 and interrupt after the first round.
        let config = BatchConfig { batch_size: 4 };
        let plain = run_batched(&e, &config, &known, &unknown).unwrap();
        let mut spec = CheckpointSpec::new(ckpt_path("kill_resume.json"));
        checkpoint::remove(&spec.path);
        spec.interrupt_after_rounds = Some(1);
        let err = run_batched_checkpointed(&e, &config, &known, &unknown, &spec).unwrap_err();
        assert!(
            matches!(err, BatchError::Interrupted { rounds_done: 1 }),
            "{err}"
        );
        assert!(spec.path.exists(), "checkpoint persisted at the kill point");
        spec.interrupt_after_rounds = None;
        let resumed = run_batched_checkpointed(&e, &config, &known, &unknown, &spec).unwrap();
        assert_eq!(plain, resumed, "resumed output must be identical");
        assert!(!spec.path.exists());
    }

    #[test]
    fn mismatched_fingerprint_is_refused() {
        let (known, unknown) = world();
        let e = engine();
        let mut spec = CheckpointSpec::new(ckpt_path("mismatch.json"));
        checkpoint::remove(&spec.path);
        spec.interrupt_after_rounds = Some(1);
        let _ =
            run_batched_checkpointed(&e, &BatchConfig { batch_size: 4 }, &known, &unknown, &spec)
                .unwrap_err();
        // Same checkpoint, different batch size: a different run.
        spec.interrupt_after_rounds = None;
        let err =
            run_batched_checkpointed(&e, &BatchConfig { batch_size: 5 }, &known, &unknown, &spec)
                .unwrap_err();
        assert!(
            matches!(
                err,
                BatchError::Checkpoint(CheckpointError::FingerprintMismatch { .. })
            ),
            "{err}"
        );
        checkpoint::remove(&spec.path);
    }

    #[test]
    fn fingerprint_tracks_content_not_metrics() {
        use darklight_obs::PipelineMetrics;
        let (known, unknown) = world();
        let config = BatchConfig { batch_size: 4 };
        let plain = engine();
        let with_metrics = TwoStage::new(TwoStageConfig {
            k: 3,
            threads: 7,
            metrics: PipelineMetrics::enabled(),
            ..TwoStageConfig::default()
        });
        // Metrics and thread count must not invalidate a checkpoint...
        assert_eq!(
            run_fingerprint(&plain, &config, &known, &unknown),
            run_fingerprint(&with_metrics, &config, &known, &unknown)
        );
        // ...but config and corpus changes must.
        let other_k = TwoStage::new(TwoStageConfig {
            k: 4,
            threads: 2,
            ..TwoStageConfig::default()
        });
        assert_ne!(
            run_fingerprint(&plain, &config, &known, &unknown),
            run_fingerprint(&other_k, &config, &known, &unknown)
        );
        assert_ne!(
            run_fingerprint(&plain, &config, &known, &unknown),
            run_fingerprint(&plain, &config, &unknown, &known)
        );
    }

    #[test]
    fn derive_picks_largest_admissible_batch() {
        let (known, unknown) = world();
        let overhead = budget_overhead_bytes(&unknown);
        let per = budget_per_candidate_bytes(&known);
        // Room for exactly five worst-case candidates alongside the
        // unknown set.
        let budget = MemoryBudget::from_bytes(overhead + 5 * per).unwrap();
        let config = BatchConfig::derive(&budget, &known, &unknown).unwrap();
        assert_eq!(config.batch_size, 5);
        // A vast budget clamps to the whole known set (one round).
        let vast = MemoryBudget::from_bytes(u64::MAX).unwrap();
        assert_eq!(
            BatchConfig::derive(&vast, &known, &unknown)
                .unwrap()
                .batch_size,
            known.len()
        );
        // Less than one candidate's worth of headroom is infeasible and
        // must fail with the typed, actionable error.
        let tiny = MemoryBudget::from_bytes(overhead + per - 1).unwrap();
        let err = BatchConfig::derive(&tiny, &known, &unknown).unwrap_err();
        assert!(matches!(err, GovernError::BudgetTooSmall { .. }), "{err}");
    }

    #[test]
    fn zero_batch_is_typed_through_every_entry_point() {
        // The governed driver is the single validation point, so a bad
        // config must surface identically through each wrapper — and
        // before any checkpoint I/O happens.
        let (known, unknown) = world();
        let bad = BatchConfig { batch_size: 0 };
        let spec = CheckpointSpec::new(ckpt_path("never_written.json"));
        let err = run_batched_checkpointed(&engine(), &bad, &known, &unknown, &spec).unwrap_err();
        assert!(matches!(&err, BatchError::InvalidConfig(_)), "{err}");
        assert!(!spec.path.exists(), "validation precedes checkpoint I/O");
        let err = run_batched_governed(&engine(), &bad, &known, &unknown, None).unwrap_err();
        assert!(matches!(&err, BatchError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn governed_budget_run_matches_derived_fixed_batch() {
        use darklight_obs::PipelineMetrics;
        let (known, unknown) = world();
        let budget = MemoryBudget::from_bytes(
            budget_overhead_bytes(&unknown) + 5 * budget_per_candidate_bytes(&known),
        )
        .unwrap();
        let config = BatchConfig::derive(&budget, &known, &unknown).unwrap();
        let fixed = run_batched(&engine(), &config, &known, &unknown).unwrap();
        let metrics = PipelineMetrics::enabled();
        let governed_engine = TwoStage::new(TwoStageConfig {
            k: 3,
            threads: 2,
            metrics: metrics.clone(),
            govern: darklight_govern::GovernConfig {
                budget: Some(budget),
                ..darklight_govern::GovernConfig::default()
            },
            ..TwoStageConfig::default()
        });
        let governed = run_batched(&governed_engine, &config, &known, &unknown).unwrap();
        assert_eq!(fixed, governed, "a derived batch size must never shrink");
        assert_eq!(metrics.counter("govern.batch_shrinks").get(), 0);
        assert!(metrics.gauge("govern.bytes_estimated").get() > 0);
    }

    #[test]
    fn pressure_ladder_shrinks_oversized_batches() {
        use darklight_obs::PipelineMetrics;
        let (known, unknown) = world();
        // The budget admits two worst-case candidates per batch but the
        // config demands eight: the ladder must halve 8 -> 4 -> 2 before
        // the first round runs, then hold at 2.
        let budget = MemoryBudget::from_bytes(
            budget_overhead_bytes(&unknown) + 2 * budget_per_candidate_bytes(&known),
        )
        .unwrap();
        let metrics = PipelineMetrics::enabled();
        let e = TwoStage::new(TwoStageConfig {
            k: 3,
            threads: 2,
            metrics: metrics.clone(),
            govern: darklight_govern::GovernConfig {
                budget: Some(budget),
                ..darklight_govern::GovernConfig::default()
            },
            ..TwoStageConfig::default()
        });
        let results = run_batched(&e, &BatchConfig { batch_size: 8 }, &known, &unknown).unwrap();
        assert_eq!(metrics.counter("govern.batch_shrinks").get(), 2);
        assert_eq!(metrics.gauge("batch.batch_size").get(), 2);
        assert!(
            metrics.gauge("govern.bytes_estimated").get() as u64 > budget.bytes(),
            "the breaching estimate is what gets recorded"
        );
        // The degraded run still completes and still links correctly.
        assert_eq!(results.len(), unknown.len());
        for m in &results {
            let best = m.best().expect("candidates exist");
            assert_eq!(
                known.records[best.index].persona,
                unknown.records[m.unknown].persona
            );
        }
        // Shrinking is deterministic: an identical second run produces
        // byte-identical rankings.
        let again = run_batched(&e, &BatchConfig { batch_size: 8 }, &known, &unknown).unwrap();
        assert_eq!(results, again);
    }

    #[test]
    fn deadline_expiry_checkpoints_and_resumes_identically() {
        use darklight_obs::PipelineMetrics;
        let (known, unknown) = world();
        let config = BatchConfig { batch_size: 4 };
        let plain = run_batched(&engine(), &config, &known, &unknown).unwrap();
        let metrics = PipelineMetrics::enabled();
        let strict = TwoStage::new(TwoStageConfig {
            k: 3,
            threads: 2,
            metrics: metrics.clone(),
            govern: darklight_govern::GovernConfig {
                deadline: Deadline::after_rounds(1),
                ..darklight_govern::GovernConfig::default()
            },
            ..TwoStageConfig::default()
        });
        let spec = CheckpointSpec::new(ckpt_path("deadline_resume.json"));
        checkpoint::remove(&spec.path);
        let err = run_batched_checkpointed(&strict, &config, &known, &unknown, &spec).unwrap_err();
        assert!(
            matches!(
                err,
                BatchError::Govern(GovernError::DeadlineExpired { rounds_done: 1 })
            ),
            "{err}"
        );
        assert_eq!(metrics.counter("govern.deadline_expired").get(), 1);
        assert!(spec.path.exists(), "expiry leaves a valid checkpoint");
        // The governor never reaches the fingerprint, so a fresh engine
        // without a deadline resumes the same run to the same bytes.
        let resumed =
            run_batched_checkpointed(&engine(), &config, &known, &unknown, &spec).unwrap();
        assert_eq!(plain, resumed, "resume after expiry must be lossless");
        assert!(!spec.path.exists());
    }
}
