//! RAM-bounded batch processing (§IV-J of the paper).
//!
//! When the known set is too large for memory, the paper splits it into
//! batches of `B` aliases, runs 10-attribution within each batch, pools the
//! per-batch survivors, and repeats until at most `B` candidates remain;
//! the final two-stage step then runs on that reduced set. Validated in
//! the paper with `B = 100`, giving precision 91% / recall 81% at the
//! global threshold — within a few points of the unbatched pipeline.

use crate::attrib::Ranked;
use crate::dataset::Dataset;
use crate::twostage::{RankedMatch, TwoStage};

/// Batched attribution configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchConfig {
    /// Maximum aliases the "hardware" can hold at once (paper: 100).
    pub batch_size: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig { batch_size: 100 }
    }
}

/// Runs the hierarchical batched pipeline: batched k-attribution rounds
/// until the candidate pool fits one batch, then the standard second stage.
///
/// # Panics
///
/// Panics if `config.batch_size` is zero.
pub fn run_batched(
    engine: &TwoStage,
    config: &BatchConfig,
    known: &Dataset,
    unknown: &Dataset,
) -> Vec<RankedMatch> {
    assert!(config.batch_size > 0, "batch size must be positive");
    let metrics = &engine.config().metrics;
    let _total = metrics.timer("batch.total").start();
    metrics
        .gauge("batch.batch_size")
        .set(config.batch_size as i64);
    let rounds = metrics.counter("batch.rounds");
    let peak_pool = metrics.gauge("batch.peak_pool");
    let k = engine.config().k;
    // Per-unknown surviving candidate indices (into `known`).
    let mut survivors: Vec<Vec<usize>> = vec![(0..known.len()).collect(); unknown.len()];
    // Iterate rounds until every unknown's pool fits in one batch. Each
    // round applies k-attribution within batches of B. A round maps each
    // pool to a subset of itself, so pools shrink monotonically — but
    // when `batch_size <= k` every batch keeps all its members and the
    // pool is a fixed point. A round that changes nothing would repeat
    // forever (the map is deterministic), so bail out and let the final
    // stage rescore the oversized pools instead of hanging.
    loop {
        let max_pool = survivors.iter().map(Vec::len).max().unwrap_or(0);
        peak_pool.set_max(max_pool as i64);
        if max_pool <= config.batch_size {
            break;
        }
        rounds.incr();
        let before = survivors.clone();
        // All unknowns share rounds but pools can differ after round one;
        // in round one all pools are identical, afterwards k·ceil(n/B)
        // shrinks fast. Process per unknown-group with identical pools to
        // reuse fits: in practice pools stay identical across unknowns
        // only in round one, so round two onward we just batch per unknown.
        let identical = survivors.windows(2).all(|w| w[0] == w[1]);
        if identical && !survivors.is_empty() {
            let pool = survivors[0].clone();
            let new_pools = batched_round(engine, config, known, unknown, &pool, None);
            survivors = new_pools;
        } else {
            // Divergent pools: each unknown reduces against its own pool,
            // independently of the others — fan the per-unknown rounds out
            // over the worker pool, keeping pool order by construction.
            let threads = engine.config().effective_threads();
            survivors = darklight_par::par_map(&survivors, threads, |u, pool| {
                batched_round(engine, config, known, unknown, pool, Some(u))
                    .into_iter()
                    .next()
                    .expect("one unknown processed")
            });
        }
        let _ = k;
        if survivors == before {
            metrics.counter("batch.stalled").incr();
            break;
        }
    }
    let pool_sizes = metrics.histogram("batch.final_pool_size");
    for pool in &survivors {
        pool_sizes.record(pool.len() as u64);
    }
    // Final stage: rescore each unknown against its surviving pool.
    let stage1: Vec<Vec<Ranked>> = survivors
        .iter()
        .enumerate()
        .map(|(u, pool)| {
            if pool.is_empty() {
                return Vec::new();
            }
            let sub = subset(known, pool);
            let one = subset_one(unknown, u);
            let reduced = engine.reduce(&sub, &one);
            reduced[0]
                .iter()
                .take(engine.config().k)
                .map(|r| Ranked {
                    index: pool[r.index],
                    score: r.score,
                })
                .collect()
        })
        .collect();
    engine.rescore(known, unknown, stage1)
}

/// One batched k-attribution round over `pool`. When `only` is given, only
/// that unknown is scored (used when pools diverge); otherwise all
/// unknowns are scored and the function returns one new pool per unknown.
fn batched_round(
    engine: &TwoStage,
    config: &BatchConfig,
    known: &Dataset,
    unknown: &Dataset,
    pool: &[usize],
    only: Option<usize>,
) -> Vec<Vec<usize>> {
    let n_unknown = if only.is_some() { 1 } else { unknown.len() };
    let mut new_pools: Vec<Vec<usize>> = vec![Vec::new(); n_unknown];
    for batch in pool.chunks(config.batch_size) {
        let sub = subset(known, batch);
        let uset = match only {
            Some(u) => subset_one(unknown, u),
            None => unknown.clone(),
        };
        let reduced = engine.reduce(&sub, &uset);
        for (slot, ranked) in new_pools.iter_mut().zip(reduced) {
            for r in ranked.iter().take(engine.config().k) {
                slot.push(batch[r.index]);
            }
        }
    }
    for p in &mut new_pools {
        p.sort_unstable();
        p.dedup();
    }
    new_pools
}

fn subset(ds: &Dataset, indices: &[usize]) -> Dataset {
    let (max_word_n, max_char_n) = ds.ngram_orders();
    Dataset::with_orders(
        ds.name.clone(),
        indices.iter().map(|&i| ds.records[i].clone()).collect(),
        max_word_n,
        max_char_n,
    )
}

fn subset_one(ds: &Dataset, index: usize) -> Dataset {
    subset(ds, &[index])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::twostage::TwoStageConfig;
    use darklight_corpus::model::{Corpus, Post, User};

    /// Twelve authors with distinct vocabularies; known + unknown halves.
    fn world() -> (Dataset, Dataset) {
        let vocabs = [
            "kayak paddle rapids portage",
            "espresso grinder portafilter crema",
            "orchid repotting perlite humidity",
            "violin rosin luthier vibrato",
            "falconry jesses tiercel mews",
            "pottery kiln glaze stoneware",
            "beekeeping hive frames nectar",
            "origami crease valley tessellation",
            "astronomy nebula telescope eyepiece",
            "fencing parry riposte piste",
            "calligraphy nib flourish gouache",
            "mycology spores substrate fruiting",
        ];
        let mut known = Corpus::new("known");
        let mut unknown = Corpus::new("unknown");
        let base = 1_486_375_200i64;
        for (pid, vocab) in vocabs.iter().enumerate() {
            let words: Vec<&str> = vocab.split(' ').collect();
            for (half, corpus) in [(0usize, &mut known), (1, &mut unknown)] {
                let mut u = User::new(format!("user{pid}_{half}"), Some(pid as u64));
                for i in 0..35i64 {
                    let ts = base + (i / 5) * 7 * 86_400 + (i % 5) * 86_400;
                    let w1 = words[i as usize % words.len()];
                    let w2 = words[(i as usize + 1) % words.len()];
                    u.posts.push(Post::new(
                        format!("my notes about {w1} mention the {w2} setup and more {w1} details for the club"),
                        ts,
                    ));
                }
                corpus.users.push(u);
            }
        }
        let b = DatasetBuilder::new();
        (b.build(&known), b.build(&unknown))
    }

    fn engine() -> TwoStage {
        TwoStage::new(TwoStageConfig {
            k: 3,
            threads: 2,
            ..TwoStageConfig::default()
        })
    }

    #[test]
    fn batched_matches_true_authors() {
        let (known, unknown) = world();
        let results = run_batched(&engine(), &BatchConfig { batch_size: 4 }, &known, &unknown);
        for m in &results {
            let best = m.best().expect("candidates exist");
            assert_eq!(
                known.records[best.index].persona, unknown.records[m.unknown].persona,
                "unknown {}",
                m.unknown
            );
        }
    }

    #[test]
    fn batched_agrees_with_unbatched_on_top_match() {
        let (known, unknown) = world();
        let e = engine();
        let unbatched = e.run(&known, &unknown);
        let batched = run_batched(&e, &BatchConfig { batch_size: 5 }, &known, &unknown);
        for (a, b) in unbatched.iter().zip(&batched) {
            assert_eq!(
                a.best().map(|r| r.index),
                b.best().map(|r| r.index),
                "unknown {}",
                a.unknown
            );
        }
    }

    #[test]
    fn huge_batch_equals_single_round() {
        let (known, unknown) = world();
        let e = engine();
        let batched = run_batched(
            &e,
            &BatchConfig {
                batch_size: known.len() + 10,
            },
            &known,
            &unknown,
        );
        let unbatched = e.run(&known, &unknown);
        for (a, b) in unbatched.iter().zip(&batched) {
            assert_eq!(a.best().map(|r| r.index), b.best().map(|r| r.index));
        }
    }

    #[test]
    fn metrics_track_rounds_and_pools() {
        use darklight_obs::PipelineMetrics;
        let (known, unknown) = world();
        let metrics = PipelineMetrics::enabled();
        let e = TwoStage::new(TwoStageConfig {
            k: 3,
            threads: 2,
            metrics: metrics.clone(),
            ..TwoStageConfig::default()
        });
        run_batched(&e, &BatchConfig { batch_size: 4 }, &known, &unknown);
        // Twelve known aliases in batches of four need at least one
        // reduction round before pools fit a single batch.
        assert!(metrics.counter("batch.rounds").get() >= 1);
        assert_eq!(metrics.gauge("batch.peak_pool").get(), known.len() as i64);
        assert_eq!(
            metrics.histogram("batch.final_pool_size").count(),
            unknown.len() as u64
        );
        assert_eq!(metrics.timer("batch.total").count(), 1);
    }

    #[test]
    fn batch_no_larger_than_k_terminates() {
        // With batch_size <= k every batch keeps all its members, so no
        // round can shrink the pool; the stall guard must break out
        // instead of looping forever, and the final stage still ranks
        // every unknown against its (oversized) pool.
        use darklight_obs::PipelineMetrics;
        let (known, unknown) = world();
        let metrics = PipelineMetrics::enabled();
        let e = TwoStage::new(TwoStageConfig {
            k: 3,
            threads: 2,
            metrics: metrics.clone(),
            ..TwoStageConfig::default()
        });
        let results = run_batched(&e, &BatchConfig { batch_size: 3 }, &known, &unknown);
        assert_eq!(metrics.counter("batch.stalled").get(), 1);
        assert_eq!(results.len(), unknown.len());
        for m in &results {
            let best = m.best().expect("candidates exist");
            assert_eq!(
                known.records[best.index].persona,
                unknown.records[m.unknown].persona
            );
        }
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let (known, unknown) = world();
        run_batched(&engine(), &BatchConfig { batch_size: 0 }, &known, &unknown);
    }
}
