//! The comparison baselines of §IV-F.
//!
//! * **Standard baseline** — character *free-space* 4-grams with cosine
//!   similarity, "the standard baseline in literature for our task"
//!   (Layton et al.; Koppel et al.; Schwartz et al.).
//! * **Koppel baseline** — Koppel, Schler & Argamon's "Authorship
//!   attribution in the wild": repeat 100 times — take a random 40% of the
//!   feature set, find each unknown's nearest known alias under cosine on
//!   that subspace, give that alias one vote; the normalized vote count is
//!   the match score.

use crate::attrib::{top_k_of, CandidateIndex, Ranked};
use crate::dataset::Dataset;
use darklight_features::ngram::char_ngrams_free_space;
use darklight_features::pipeline::{FeatureConfig, FeatureExtractor};
use darklight_features::sparse::SparseVector;
use darklight_features::vocab::{count_terms, VocabBuilder};

/// The Standard baseline: char free-space 4-grams, raw term frequency,
/// unit-norm, cosine ranking. One stage, no TF-IDF, no activity profile.
#[derive(Debug, Clone)]
pub struct StandardBaseline {
    /// Vocabulary size cap (the literature uses the full gram set; capping
    /// at a large N keeps memory bounded with no measurable effect).
    pub max_features: usize,
}

impl Default for StandardBaseline {
    fn default() -> StandardBaseline {
        StandardBaseline {
            max_features: 100_000,
        }
    }
}

impl StandardBaseline {
    /// Scores every unknown against every known alias; returns per-unknown
    /// ranked candidates (all of them, best first).
    pub fn run(&self, known: &Dataset, unknown: &Dataset) -> Vec<Vec<Ranked>> {
        let gram_counts = |text: &str| count_terms(char_ngrams_free_space(text, 4));
        let mut builder = VocabBuilder::new();
        let known_counts: Vec<_> = known.records.iter().map(|r| gram_counts(&r.text)).collect();
        for c in &known_counts {
            builder.add_doc_counts(c);
        }
        let vocab = builder.select_top(self.max_features);
        let to_vec = |counts: &std::collections::HashMap<String, u32>| {
            SparseVector::from_pairs(
                counts
                    .iter()
                    .filter_map(|(g, &c)| vocab.index_of(g).map(|i| (i, c as f32))),
            )
            .l2_normalized()
        };
        let known_vecs: Vec<SparseVector> = known_counts.iter().map(to_vec).collect();
        let index = CandidateIndex::build(&known_vecs, vocab.len().max(1));
        unknown
            .records
            .iter()
            .map(|r| {
                let v = to_vec(&gram_counts(&r.text));
                index.top_k(&v, known.len())
            })
            .collect()
    }
}

/// The Koppel et al. baseline.
#[derive(Debug, Clone)]
pub struct KoppelBaseline {
    /// Number of subsampling iterations (paper: 100).
    pub iterations: usize,
    /// Fraction of features per iteration (paper: 0.40).
    pub feature_fraction: f64,
    /// Feature space used as "the original features set". Koppel et al.
    /// (2011) is pure stylometry, so the default is the space-reduction
    /// text features *without* the daily-activity block.
    pub features: FeatureConfig,
    /// RNG seed for the feature subsets.
    pub seed: u64,
}

impl Default for KoppelBaseline {
    fn default() -> KoppelBaseline {
        KoppelBaseline {
            iterations: 100,
            feature_fraction: 0.40,
            features: FeatureConfig::space_reduction().without_activity(),
            seed: 0xC0FFEE,
        }
    }
}

/// A tiny deterministic PRNG for the feature masks (SplitMix64; avoids a
/// `rand` dependency in the engine crate).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        ((self.next() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl KoppelBaseline {
    /// Runs the vote procedure; per unknown, every known alias ranked by
    /// normalized vote share (best first).
    pub fn run(&self, known: &Dataset, unknown: &Dataset) -> Vec<Vec<Ranked>> {
        let space = FeatureExtractor::new(self.features.clone())
            .fit_counted(known.records.iter().map(|r| &r.counted));
        let known_vecs: Vec<SparseVector> = known
            .records
            .iter()
            .map(|r| space.vectorize_counted(&r.counted, r.profile.as_ref()))
            .collect();
        let unknown_vecs: Vec<SparseVector> = unknown
            .records
            .iter()
            .map(|r| space.vectorize_counted(&r.counted, r.profile.as_ref()))
            .collect();
        let dim = space.dim();
        let mut votes: Vec<Vec<u32>> = vec![vec![0; known.len()]; unknown.len()];
        let mut rng = SplitMix64(self.seed);
        for _ in 0..self.iterations {
            // Sample the feature mask.
            let mask: Vec<bool> = (0..dim)
                .map(|_| rng.chance(self.feature_fraction))
                .collect();
            let masked: Vec<SparseVector> =
                known_vecs.iter().map(|v| mask_vector(v, &mask)).collect();
            let norms: Vec<f64> = masked.iter().map(|v| v.norm()).collect();
            let index = CandidateIndex::build(&masked, dim);
            for (u, uv) in unknown_vecs.iter().enumerate() {
                let mu = mask_vector(uv, &mask);
                let un = mu.norm();
                if un == 0.0 {
                    continue;
                }
                let dots = index.scores(&mu);
                let mut best = None;
                let mut best_score = f64::MIN;
                for (i, &d) in dots.iter().enumerate() {
                    if norms[i] == 0.0 {
                        continue;
                    }
                    let cos = d / (norms[i] * un);
                    if cos > best_score {
                        best_score = cos;
                        best = Some(i);
                    }
                }
                if let Some(b) = best {
                    votes[u][b] += 1;
                }
            }
        }
        votes
            .into_iter()
            .map(|vs| {
                let shares: Vec<f64> = vs
                    .iter()
                    .map(|&v| v as f64 / self.iterations as f64)
                    .collect();
                top_k_of(&shares, shares.len())
            })
            .collect()
    }
}

fn mask_vector(v: &SparseVector, mask: &[bool]) -> SparseVector {
    let mut out = v.clone();
    out.retain_indices(|i| mask.get(i as usize).copied().unwrap_or(false));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use darklight_corpus::model::{Corpus, Post, User};

    fn world() -> (Dataset, Dataset) {
        let styles = [
            (
                "quilts",
                "patchwork quilting batting applique binding thimble stitching fabric",
            ),
            (
                "radios",
                "antenna frequency transmitter oscillator amplifier bandwidth receiver signal",
            ),
        ];
        let mut known = Corpus::new("known");
        let mut unknown = Corpus::new("unknown");
        let base = 1_486_375_200i64;
        for (pid, (name, vocab)) in styles.iter().enumerate() {
            let words: Vec<&str> = vocab.split(' ').collect();
            for (half, corpus) in [(0usize, &mut known), (1, &mut unknown)] {
                let mut u = User::new(format!("{name}{half}"), Some(pid as u64));
                for i in 0..35i64 {
                    let ts = base + (i / 5) * 7 * 86_400 + (i % 5) * 86_400;
                    let w1 = words[i as usize % words.len()];
                    let w2 = words[(i as usize + 2) % words.len()];
                    u.posts.push(Post::new(
                        format!("spent the evening sorting {w1} next to the {w2} while thinking about {w1} projects"),
                        ts,
                    ));
                }
                corpus.users.push(u);
            }
        }
        let b = DatasetBuilder::new();
        (b.build(&known), b.build(&unknown))
    }

    #[test]
    fn standard_baseline_ranks_true_author_first() {
        let (known, unknown) = world();
        let results = StandardBaseline::default().run(&known, &unknown);
        for (u, ranked) in results.iter().enumerate() {
            assert_eq!(
                known.records[ranked[0].index].persona,
                unknown.records[u].persona
            );
        }
    }

    #[test]
    fn standard_baseline_scores_in_unit_range() {
        let (known, unknown) = world();
        for ranked in StandardBaseline::default().run(&known, &unknown) {
            for r in ranked {
                assert!((-1e-6..=1.0 + 1e-6).contains(&r.score));
            }
        }
    }

    #[test]
    fn koppel_votes_for_true_author() {
        let (known, unknown) = world();
        let koppel = KoppelBaseline {
            iterations: 20,
            ..KoppelBaseline::default()
        };
        let results = koppel.run(&known, &unknown);
        for (u, ranked) in results.iter().enumerate() {
            assert_eq!(
                known.records[ranked[0].index].persona, unknown.records[u].persona,
                "unknown {u}"
            );
            // Vote shares normalized.
            assert!(ranked[0].score <= 1.0 + 1e-9);
            let total: f64 = ranked.iter().map(|r| r.score).sum();
            assert!(total <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn koppel_deterministic_per_seed() {
        let (known, unknown) = world();
        let k = KoppelBaseline {
            iterations: 10,
            ..KoppelBaseline::default()
        };
        let a = k.run(&known, &unknown);
        let b = k.run(&known, &unknown);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.len(), y.len());
            for (r1, r2) in x.iter().zip(y) {
                assert_eq!(r1.index, r2.index);
                assert!((r1.score - r2.score).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mask_vector_filters() {
        let v = SparseVector::from_pairs([(0, 1.0), (1, 2.0), (2, 3.0)]);
        let masked = mask_vector(&v, &[true, false, true]);
        assert_eq!(masked.nnz(), 2);
        assert_eq!(masked.get(1), 0.0);
    }
}
