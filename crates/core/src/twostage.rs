//! The two-stage attribution algorithm (§IV-I of the paper).
//!
//! Stage 1 fits the *space-reduction* feature space on the known aliases,
//! embeds everyone, and keeps the k most similar candidates per unknown.
//! Stage 2 re-fits the *final* feature space on just those k candidates —
//! "this changes the sequences of words and chars selected by frequency and
//! consequently the Tf-Idf weighting" — re-scores, and outputs the best
//! pair when its score clears the threshold.

use crate::attrib::{cmp_desc, top_k_of, CandidateIndex, Ranked};
use crate::dataset::Dataset;
use darklight_features::pipeline::{FeatureConfig, FeatureExtractor};
use darklight_features::sparse::SparseVector;
use darklight_obs::PipelineMetrics;

/// Configuration of the two-stage pipeline. Defaults are the paper's.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoStageConfig {
    /// Candidates kept by the reduction stage (paper: 10).
    pub k: usize,
    /// Stage-1 feature configuration (Table II, "Space Reduction").
    pub reduction: FeatureConfig,
    /// Stage-2 feature configuration (Table II, "Final").
    pub final_stage: FeatureConfig,
    /// Similarity threshold for emitting a pair (paper: 0.4190).
    pub threshold: f64,
    /// Worker threads for batch scoring (0 = all available cores).
    pub threads: usize,
    /// Observability handle; disabled by default. Instruments only
    /// record — they are never read back — so enabling metrics cannot
    /// change attribution output (pinned by `tests/metrics_parity.rs`).
    pub metrics: PipelineMetrics,
    /// Resource governor (memory budget, deadline, I/O retry policy);
    /// inert by default. Like `metrics` and `threads`, governance can
    /// change when a run stops or how it is chunked, but never its
    /// output bytes, so it is excluded from the checkpoint fingerprint.
    pub govern: darklight_govern::GovernConfig,
}

impl Default for TwoStageConfig {
    fn default() -> TwoStageConfig {
        TwoStageConfig {
            k: crate::PAPER_K,
            reduction: FeatureConfig::space_reduction(),
            final_stage: FeatureConfig::final_stage(),
            threshold: crate::PAPER_THRESHOLD,
            threads: 0,
            metrics: PipelineMetrics::disabled(),
            govern: darklight_govern::GovernConfig::default(),
        }
    }
}

impl TwoStageConfig {
    /// Copy without the daily-activity block in either stage (the
    /// "text-only" rows of Table III and Fig. 4).
    pub fn without_activity(mut self) -> TwoStageConfig {
        self.reduction = self.reduction.without_activity();
        self.final_stage = self.final_stage.without_activity();
        self
    }

    /// Copy recording into `metrics`.
    pub fn with_metrics(mut self, metrics: PipelineMetrics) -> TwoStageConfig {
        self.metrics = metrics;
        self
    }

    /// The resolved worker count: `threads` when positive, otherwise
    /// auto-detected (`DARKLIGHT_THREADS` override, then
    /// `available_parallelism`, falling back to 1 — serial, always
    /// correct — when detection fails). The resolved count is recorded in
    /// the `twostage.threads` gauge by every entry point so snapshots show
    /// what actually ran.
    pub fn effective_threads(&self) -> usize {
        darklight_par::resolve_threads(self.threads)
    }

    /// Records the resolved worker count in the `twostage.threads` gauge
    /// and returns it.
    fn observed_threads(&self) -> usize {
        let threads = self.effective_threads();
        self.metrics.gauge("twostage.threads").set(threads as i64);
        threads
    }
}

/// The outcome of the pipeline for one unknown alias.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedMatch {
    /// Index of the unknown alias in the unknown dataset.
    pub unknown: usize,
    /// Stage-1 candidates (indices into the known dataset), best first.
    pub stage1: Vec<Ranked>,
    /// Stage-2 re-scores of those candidates, best first.
    pub stage2: Vec<Ranked>,
}

impl RankedMatch {
    /// The best candidate after stage 2, if any candidates existed.
    pub fn best(&self) -> Option<Ranked> {
        self.stage2.first().copied()
    }

    /// `true` when the best stage-2 score clears `threshold`.
    pub fn accepted(&self, threshold: f64) -> bool {
        self.best().is_some_and(|b| b.score >= threshold)
    }
}

/// The two-stage attribution engine.
#[derive(Debug, Clone, Default)]
pub struct TwoStage {
    config: TwoStageConfig,
}

impl TwoStage {
    /// Engine with the given configuration.
    pub fn new(config: TwoStageConfig) -> TwoStage {
        TwoStage { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TwoStageConfig {
        &self.config
    }

    /// Stage 1 only: the k-attribution candidates for every unknown
    /// (§IV-C). Returned per unknown, best first.
    ///
    /// Vectorization is a *skip-tolerant* stage: a record whose
    /// vectorization panics degrades to the zero vector (it can never
    /// rank, and as a query it returns an all-zero candidate scoring)
    /// instead of killing the run; each caught panic increments
    /// `par.worker_panics` and `twostage.vectorize_panics`. Panics depend
    /// only on the record, so degraded output stays thread-count
    /// deterministic.
    pub fn reduce(&self, known: &Dataset, unknown: &Dataset) -> Vec<Vec<Ranked>> {
        let metrics = &self.config.metrics;
        let _stage1 = metrics.timer("twostage.stage1").start();
        let threads = self.config.observed_threads();
        let space = FeatureExtractor::new(self.config.reduction.clone())
            .with_metrics(metrics.clone())
            .with_threads(threads)
            .fit_counted(known.records.iter().map(|r| &r.counted));
        let known_vecs =
            self.vectorize_tolerant(&known.records, threads, &space, "twostage.vectorize_known");
        let index = CandidateIndex::build_with_metrics(&known_vecs, space.dim(), metrics);
        let queries = self.vectorize_tolerant(
            &unknown.records,
            threads,
            &space,
            "twostage.vectorize_query",
        );
        index.top_k_batch(&queries, self.config.k, threads)
    }

    /// Stage 1 against an **already fitted** space: ranks every unknown
    /// against precomputed known vectors instead of refitting on the
    /// known set. This is the serving path for a persisted fit artifact
    /// (`darklight-core::artifact`): the space and the known vectors are
    /// restored bit-exactly from disk, queries are vectorized in the
    /// restored space, and the candidate lists come out byte-identical
    /// to [`reduce`](Self::reduce) on the original known dataset.
    pub fn reduce_prefit(
        &self,
        space: &darklight_features::pipeline::FeatureSpace,
        known_vecs: &[SparseVector],
        unknown: &Dataset,
    ) -> Vec<Vec<Ranked>> {
        let metrics = &self.config.metrics;
        let _stage1 = metrics.timer("twostage.stage1").start();
        let threads = self.config.observed_threads();
        let index = CandidateIndex::build_with_metrics(known_vecs, space.dim(), metrics);
        let queries =
            self.vectorize_tolerant(&unknown.records, threads, space, "twostage.vectorize_query");
        index.top_k_batch(&queries, self.config.k, threads)
    }

    /// Vectorizes `records` in parallel, degrading panicking records to
    /// the zero vector (skip-and-record policy; see [`reduce`](Self::reduce)).
    fn vectorize_tolerant(
        &self,
        records: &[crate::dataset::Record],
        threads: usize,
        space: &darklight_features::pipeline::FeatureSpace,
        site: &str,
    ) -> Vec<SparseVector> {
        let metrics = &self.config.metrics;
        darklight_par::try_par_map(records, threads, metrics, |i, r| {
            darklight_par::fault::maybe_panic(site, i);
            space.vectorize_counted(&r.counted, r.profile.as_ref())
        })
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|_| {
                metrics.counter("twostage.vectorize_panics").incr();
                SparseVector::new()
            })
        })
        .collect()
    }

    /// Both stages for every unknown alias.
    pub fn run(&self, known: &Dataset, unknown: &Dataset) -> Vec<RankedMatch> {
        let _total = self.config.metrics.timer("twostage.total").start();
        let stage1 = self.reduce(known, unknown);
        self.rescore(known, unknown, stage1)
    }

    /// Stage 2 given existing stage-1 candidate lists (used by the batch
    /// mode of §IV-J, which produces candidates hierarchically).
    pub fn rescore(
        &self,
        known: &Dataset,
        unknown: &Dataset,
        stage1: Vec<Vec<Ranked>>,
    ) -> Vec<RankedMatch> {
        assert_eq!(
            stage1.len(),
            unknown.records.len(),
            "stage-1 shape mismatch"
        );
        let metrics = &self.config.metrics;
        let _stage2 = metrics.timer("twostage.stage2").start();
        let threads = self.config.observed_threads();
        metrics
            .counter("twostage.rescored_unknowns")
            .add(unknown.records.len() as u64);
        // Each unknown's refit/re-rank is independent; the shared helper
        // guarantees slot `u` of the output is unknown `u`'s result for
        // every thread count.
        //
        // Rescoring is deliberately *fail-fast*: a hole in the stage-2
        // results would silently change the final rankings (an absent
        // candidate list reads as "no match" downstream), so a panicking
        // worker is caught — isolated from its siblings, which all finish,
        // and counted in `par.worker_panics` — then re-raised here with
        // its payload preserved.
        let slots = darklight_par::try_par_map(&stage1, threads, metrics, |u, candidates| {
            darklight_par::fault::maybe_panic("twostage.rescore", u);
            self.rescore_one(known, unknown, u, candidates)
        });
        slots
            .into_iter()
            .map(|slot| match slot {
                Ok(m) => m,
                Err(p) => panic!("stage-2 rescore failed (fail-fast stage): {p}"),
            })
            .collect()
    }

    /// Runs stage 2 for a single unknown: refit on the candidate set,
    /// vectorize, re-rank.
    fn rescore_one(
        &self,
        known: &Dataset,
        unknown: &Dataset,
        u: usize,
        candidates: &[Ranked],
    ) -> RankedMatch {
        if candidates.is_empty() {
            return RankedMatch {
                unknown: u,
                stage1: Vec::new(),
                stage2: Vec::new(),
            };
        }
        let urec = &unknown.records[u];
        // The refit corpus is the k candidates *plus the unknown document*:
        // §IV-I — "this procedure changes the feature vector of the unknown
        // alias too". Grams unique to the unknown then carry high IDF,
        // sharpening the discrimination among near candidates.
        let space = FeatureExtractor::new(self.config.final_stage.clone()).fit_counted(
            candidates
                .iter()
                .map(|c| &known.records[c.index].counted)
                .chain(std::iter::once(&urec.counted)),
        );
        let uvec = space.vectorize_counted(&urec.counted, urec.profile.as_ref());
        let mut stage2: Vec<Ranked> = candidates
            .iter()
            .map(|c| {
                let rec = &known.records[c.index];
                let v = space.vectorize_counted(&rec.counted, rec.profile.as_ref());
                Ranked {
                    index: c.index,
                    score: uvec.dot(&v),
                }
            })
            .collect();
        stage2.sort_by(|a, b| cmp_desc((a.score, a.index), (b.score, b.index)));
        RankedMatch {
            unknown: u,
            stage1: candidates.to_vec(),
            stage2,
        }
    }

    /// Single-stage ablation (the "without reduction" rows of Table VI and
    /// Fig. 5): fit the final feature space on *all* known aliases and rank
    /// every candidate in one pass, keeping the top `k` per unknown.
    pub fn run_without_reduction(&self, known: &Dataset, unknown: &Dataset) -> Vec<RankedMatch> {
        self.run_without_reduction_depth(known, unknown, self.config.k)
    }

    /// Like [`run_without_reduction`](TwoStage::run_without_reduction) but
    /// keeping `depth` candidates per unknown — `known.len()` gives the
    /// full ranking, which the paper's literal pair-emission rule needs
    /// when there is no reduction to cap the candidate set.
    pub fn run_without_reduction_depth(
        &self,
        known: &Dataset,
        unknown: &Dataset,
        depth: usize,
    ) -> Vec<RankedMatch> {
        let metrics = &self.config.metrics;
        let threads = self.config.observed_threads();
        let space = FeatureExtractor::new(self.config.final_stage.clone())
            .with_metrics(metrics.clone())
            .with_threads(threads)
            .fit_counted(known.records.iter().map(|r| &r.counted));
        let known_vecs =
            self.vectorize_tolerant(&known.records, threads, &space, "twostage.vectorize_known");
        let index = CandidateIndex::build_with_metrics(&known_vecs, space.dim(), metrics);
        let queries = self.vectorize_tolerant(
            &unknown.records,
            threads,
            &space,
            "twostage.vectorize_query",
        );
        let tops = index.top_k_batch(&queries, depth, threads);
        tops.into_iter()
            .enumerate()
            .map(|(u, ranked)| RankedMatch {
                unknown: u,
                stage1: ranked.clone(),
                stage2: ranked,
            })
            .collect()
    }

    /// Convenience: accepted pairs `(unknown, candidate, score)` at the
    /// configured threshold.
    pub fn link(&self, known: &Dataset, unknown: &Dataset) -> Vec<(usize, usize, f64)> {
        let ranked = self.run(known, unknown);
        self.threshold_links(ranked)
    }

    /// Applies the configured acceptance threshold to ranked matches
    /// (shared by the unbatched and batched drivers).
    pub fn threshold_links(&self, ranked: Vec<RankedMatch>) -> Vec<(usize, usize, f64)> {
        let metrics = &self.config.metrics;
        // Micro-units because gauges are integers; together with the two
        // counters this gives acceptance rate as a function of threshold.
        metrics
            .gauge("twostage.threshold_micros")
            .set((self.config.threshold * 1e6) as i64);
        let accepted = metrics.counter("twostage.links_accepted");
        let rejected = metrics.counter("twostage.links_rejected");
        ranked
            .into_iter()
            .filter_map(|m| {
                let Some(best) = m.best() else {
                    rejected.incr();
                    return None;
                };
                if best.score >= self.config.threshold {
                    accepted.incr();
                    Some((m.unknown, best.index, best.score))
                } else {
                    rejected.incr();
                    None
                }
            })
            .collect()
    }
}

/// Extension used by ablations: score a full similarity matrix without an
/// index (small sets only).
pub fn dense_scores(known: &[SparseVector], unknown: &[SparseVector]) -> Vec<Vec<f64>> {
    unknown
        .iter()
        .map(|u| known.iter().map(|k| u.dot(k)).collect())
        .collect()
}

/// Ranks a dense score row; see [`top_k_of`].
pub fn rank_row(scores: &[f64], k: usize) -> Vec<Ranked> {
    top_k_of(scores, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use darklight_corpus::model::{Corpus, Post, User};

    /// A small world: three authors with distinctive vocabulary, split into
    /// known/unknown halves.
    fn world() -> (Dataset, Dataset) {
        let styles = [
            (
                "alice",
                "gardening tulips compost seedling watering trowel blossom pruning",
            ),
            (
                "bob",
                "overclocking motherboard thermals benchmark silicon wattage chipset bios",
            ),
            (
                "carol",
                "sourdough hydration crumb proofing levain bannetons scoring oven",
            ),
        ];
        let mut known = Corpus::new("known");
        let mut unknown = Corpus::new("unknown");
        let base = 1_486_375_200i64;
        for (pid, (name, vocab)) in styles.iter().enumerate() {
            let words: Vec<&str> = vocab.split(' ').collect();
            for (half, corpus) in [(0, &mut known), (1, &mut unknown)] {
                let alias = if half == 0 {
                    name.to_string()
                } else {
                    format!("{name}_alt")
                };
                let mut u = User::new(alias, Some(pid as u64));
                for i in 0..40 {
                    let ts = base
                        + ((i + half * 40) / 5) * 7 * 86_400
                        + ((i + half * 40) % 5) * 86_400
                        + pid as i64 * 3600; // distinct posting hours
                    let w1 = words[i as usize % words.len()];
                    let w2 = words[(i as usize + 1) % words.len()];
                    let w3 = words[(i as usize + 3) % words.len()];
                    u.posts.push(Post::new(
                        format!("today i worked on {w1} and then compared {w2} with {w3} before writing notes about {w1} again"),
                        ts,
                    ));
                }
                corpus.users.push(u);
            }
        }
        let b = DatasetBuilder::new();
        (b.build(&known), b.build(&unknown))
    }

    fn config() -> TwoStageConfig {
        TwoStageConfig {
            k: 2,
            threads: 2,
            ..TwoStageConfig::default()
        }
    }

    #[test]
    fn reduce_finds_true_author_in_candidates() {
        let (known, unknown) = world();
        let engine = TwoStage::new(config());
        let stage1 = engine.reduce(&known, &unknown);
        for (u, candidates) in stage1.iter().enumerate() {
            let truth = unknown.records[u].persona;
            assert!(
                candidates
                    .iter()
                    .any(|c| known.records[c.index].persona == truth),
                "unknown {u}: true author not in candidates"
            );
        }
    }

    #[test]
    fn full_pipeline_matches_correctly() {
        let (known, unknown) = world();
        let engine = TwoStage::new(config());
        let results = engine.run(&known, &unknown);
        assert_eq!(results.len(), unknown.len());
        for m in &results {
            let best = m.best().expect("candidates exist");
            assert_eq!(
                known.records[best.index].persona, unknown.records[m.unknown].persona,
                "wrong match for unknown {}",
                m.unknown
            );
            assert!(best.score > 0.2, "score {}", best.score);
            // Stage-2 list is sorted.
            for w in m.stage2.windows(2) {
                assert!(w[0].score >= w[1].score);
            }
        }
    }

    #[test]
    fn without_reduction_also_ranks() {
        let (known, unknown) = world();
        let engine = TwoStage::new(config());
        let results = engine.run_without_reduction(&known, &unknown);
        for m in &results {
            let best = m.best().unwrap();
            assert_eq!(
                known.records[best.index].persona,
                unknown.records[m.unknown].persona
            );
        }
    }

    #[test]
    fn link_respects_threshold() {
        let (known, unknown) = world();
        let mut cfg = config();
        cfg.threshold = 1.1; // impossible
        assert!(TwoStage::new(cfg.clone()).link(&known, &unknown).is_empty());
        cfg.threshold = 0.0;
        let links = TwoStage::new(cfg).link(&known, &unknown);
        assert_eq!(links.len(), unknown.len());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (known, unknown) = world();
        let r1 = TwoStage::new(TwoStageConfig {
            threads: 1,
            ..config()
        })
        .run(&known, &unknown);
        let r4 = TwoStage::new(TwoStageConfig {
            threads: 4,
            ..config()
        })
        .run(&known, &unknown);
        for (a, b) in r1.iter().zip(&r4) {
            assert_eq!(a.best().map(|x| x.index), b.best().map(|x| x.index));
            assert!((a.best().unwrap().score - b.best().unwrap().score).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_unknown_set() {
        let (known, _) = world();
        let empty = Dataset::new("empty", Vec::new());
        let engine = TwoStage::new(config());
        assert!(engine.run(&known, &empty).is_empty());
    }

    #[test]
    fn accepted_logic() {
        let m = RankedMatch {
            unknown: 0,
            stage1: vec![],
            stage2: vec![Ranked {
                index: 3,
                score: 0.5,
            }],
        };
        assert!(m.accepted(0.4));
        assert!(!m.accepted(0.6));
        let none = RankedMatch {
            unknown: 0,
            stage1: vec![],
            stage2: vec![],
        };
        assert!(!none.accepted(0.0));
    }
}
