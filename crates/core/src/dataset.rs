//! Attribution-ready datasets.
//!
//! A [`Dataset`] is a polished corpus reduced to what the attribution
//! engine consumes: per alias, the 1,500-word longest-first text selection
//! (§IV-D), its prepared/precounted form, and the daily activity profile
//! (when the alias has enough usable timestamps). Ground-truth metadata
//! (persona ids, leaked facts) rides along untouched for the evaluation
//! layer.

use std::collections::HashMap;

use darklight_activity::profile::{DailyActivityProfile, ProfileBuilder, ProfilePolicy};
use darklight_corpus::model::{Corpus, Fact};
use darklight_corpus::refine::select_text;
use darklight_features::pipeline::{CountedDoc, PreparedDoc};
use darklight_govern::EstimateBytes;
use darklight_obs::PipelineMetrics;
use darklight_text::lemma::Lemmatizer;

/// One attribution-ready alias.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// The alias name.
    pub alias: String,
    /// Ground truth: persona id, if this is a persona-backed alias.
    pub persona: Option<u64>,
    /// Ground truth: facts leaked by this alias.
    pub facts: Vec<Fact>,
    /// The selected text (longest-first, word-budgeted).
    pub text: String,
    /// Tokenized/lemmatized form of `text`.
    pub doc: PreparedDoc,
    /// Precomputed n-gram counts of `doc`.
    pub counted: CountedDoc,
    /// The daily activity profile, when buildable.
    pub profile: Option<DailyActivityProfile>,
}

/// A named set of attribution-ready records.
///
/// Construct with [`Dataset::new`] (or
/// [`Dataset::with_orders`] when the records were counted at non-default
/// n-gram maxima); construction builds the alias → index map that backs
/// O(1) [`index_of`](Dataset::index_of) lookups, so `records` should not
/// be mutated afterwards — derive new datasets through
/// [`with_word_budget`](Dataset::with_word_budget) /
/// [`merged_with`](Dataset::merged_with) instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Dataset name (usually the forum name).
    pub name: String,
    /// The records.
    pub records: Vec<Record>,
    /// The n-gram maxima the records' [`CountedDoc`]s were counted at.
    max_word_n: usize,
    max_char_n: usize,
    /// alias → index of its *first* occurrence, built once at construction.
    alias_index: HashMap<String, usize>,
}

impl Dataset {
    /// A dataset whose records were counted at the paper's n-gram maxima
    /// (word 1–3, char 1–5).
    pub fn new(name: impl Into<String>, records: Vec<Record>) -> Dataset {
        Dataset::with_orders(
            name,
            records,
            crate::PAPER_MAX_WORD_N,
            crate::PAPER_MAX_CHAR_N,
        )
    }

    /// A dataset whose records were counted at the given n-gram maxima.
    pub fn with_orders(
        name: impl Into<String>,
        records: Vec<Record>,
        max_word_n: usize,
        max_char_n: usize,
    ) -> Dataset {
        let mut alias_index = HashMap::with_capacity(records.len());
        for (i, r) in records.iter().enumerate() {
            // First occurrence wins, matching the linear-scan semantics the
            // map replaced (merged datasets can hold duplicate aliases).
            alias_index.entry(r.alias.clone()).or_insert(i);
        }
        Dataset {
            name: name.into(),
            records,
            max_word_n,
            max_char_n,
            alias_index,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The `(max_word_n, max_char_n)` the records were counted at.
    pub fn ngram_orders(&self) -> (usize, usize) {
        (self.max_word_n, self.max_char_n)
    }

    /// Index of an alias, if present (first occurrence for duplicates).
    /// O(1): backed by a map built once at construction.
    pub fn index_of(&self, alias: &str) -> Option<usize> {
        self.alias_index.get(alias).copied()
    }

    /// Restricts every record's document to the first `words` word tokens
    /// (the Table III word-budget sweep). Profiles are kept as they are —
    /// the sweep varies text, not timestamps. Recounting preserves the
    /// dataset's configured n-gram maxima.
    pub fn with_word_budget(&self, words: usize) -> Dataset {
        let records = self
            .records
            .iter()
            .map(|r| {
                let doc = r.doc.truncate_words(words);
                let counted = CountedDoc::from_prepared(&doc, self.max_word_n, self.max_char_n);
                Record {
                    alias: r.alias.clone(),
                    persona: r.persona,
                    facts: r.facts.clone(),
                    text: r.text.clone(),
                    doc,
                    counted,
                    profile: r.profile.clone(),
                }
            })
            .collect();
        Dataset::with_orders(self.name.clone(), records, self.max_word_n, self.max_char_n)
    }

    /// Concatenates two datasets (the paper merges TMG and DM into a
    /// single DarkWeb dataset in §IV-G). The merged dataset advertises the
    /// larger n-gram maxima of the two halves.
    pub fn merged_with(&self, other: &Dataset, name: impl Into<String>) -> Dataset {
        let mut records = self.records.clone();
        records.extend(other.records.iter().cloned());
        Dataset::with_orders(
            name,
            records,
            self.max_word_n.max(other.max_word_n),
            self.max_char_n.max(other.max_char_n),
        )
    }
}

impl EstimateBytes for Record {
    fn estimate_bytes(&self) -> u64 {
        // The attribution working set per alias: the selected text, its
        // prepared and counted forms, and the activity profile. Ground
        // truth (persona id, facts) is charged a flat overhead — it is
        // carried, not expanded, by the pipeline.
        self.alias.len() as u64
            + self.text.len() as u64
            + self.doc.estimate_bytes()
            + self.counted.estimate_bytes()
            + self
                .profile
                .as_ref()
                .map_or(0, |_| (darklight_activity::profile::HOURS as u64) * 12)
            + 128
    }
}

impl EstimateBytes for Dataset {
    fn estimate_bytes(&self) -> u64 {
        // Record payloads plus a flat per-record charge for the alias →
        // index map entry. Content-deterministic: two datasets with equal
        // records estimate equally regardless of how they were built.
        self.records
            .iter()
            .map(|r| r.estimate_bytes() + r.alias.len() as u64 + 48)
            .sum::<u64>()
            + self.name.len() as u64
            + 64
    }
}

/// Builds [`Dataset`]s from corpora.
#[derive(Debug)]
pub struct DatasetBuilder {
    /// Word budget per alias (paper: 1,500).
    pub word_budget: usize,
    /// Profile policy (paper defaults: UTC, 30 timestamps, weekends and
    /// holidays excluded).
    pub profile_policy: ProfilePolicy,
    /// Maximum word n-gram length to precount (paper: 3). Must cover the
    /// largest `max_word_n` of any [`FeatureConfig`] fitted on the
    /// records — see [`with_ngram_orders`](DatasetBuilder::with_ngram_orders).
    ///
    /// [`FeatureConfig`]: darklight_features::pipeline::FeatureConfig
    pub max_word_n: usize,
    /// Maximum char n-gram length to precount (paper: 5).
    pub max_char_n: usize,
    /// Worker threads for per-alias preparation (0 = auto).
    pub threads: usize,
    lemmatizer: Lemmatizer,
    metrics: PipelineMetrics,
}

impl DatasetBuilder {
    /// Builder with the paper's settings.
    pub fn new() -> DatasetBuilder {
        DatasetBuilder {
            word_budget: crate::PAPER_WORD_BUDGET,
            profile_policy: ProfilePolicy::default(),
            max_word_n: crate::PAPER_MAX_WORD_N,
            max_char_n: crate::PAPER_MAX_CHAR_N,
            threads: 0,
            lemmatizer: Lemmatizer::new(),
            metrics: PipelineMetrics::disabled(),
        }
    }

    /// Sets the per-alias word budget.
    pub fn with_word_budget(mut self, words: usize) -> DatasetBuilder {
        self.word_budget = words;
        self
    }

    /// Sets the n-gram maxima records are precounted at. Pass the largest
    /// `max_word_n`/`max_char_n` over every stage configuration that will
    /// score the records — counting at larger maxima only adds longer
    /// grams, which compete in the frequency ranking as the paper's do,
    /// while counting at *smaller* maxima silently drops whole n-gram
    /// families from scoring.
    pub fn with_ngram_orders(mut self, max_word_n: usize, max_char_n: usize) -> DatasetBuilder {
        assert!(max_word_n >= 1, "word n-gram order must be at least 1");
        assert!(max_char_n >= 1, "char n-gram order must be at least 1");
        self.max_word_n = max_word_n;
        self.max_char_n = max_char_n;
        self
    }

    /// Sets the worker-thread count for [`build`](DatasetBuilder::build)
    /// (0 = auto-detect; see [`darklight_par::resolve_threads`]).
    pub fn with_threads(mut self, threads: usize) -> DatasetBuilder {
        self.threads = threads;
        self
    }

    /// Records build timing and thread counts into `metrics`.
    pub fn with_metrics(mut self, metrics: PipelineMetrics) -> DatasetBuilder {
        self.metrics = metrics;
        self
    }

    /// Builds the dataset: selects text, prepares and counts documents,
    /// builds activity profiles. Aliases whose profile cannot be built
    /// keep `profile = None` (their vectors simply lack the activity
    /// block).
    ///
    /// Per-alias preparation (tokenize → lemmatize → count) is
    /// independent across aliases and runs on the configured worker pool;
    /// output order is the corpus order regardless of thread count.
    pub fn build(&self, corpus: &Corpus) -> Dataset {
        let _build = self.metrics.timer("dataset.build").start();
        let threads = darklight_par::resolve_threads(self.threads);
        self.metrics.gauge("dataset.threads").set(threads as i64);
        let profiles = ProfileBuilder::new(self.profile_policy);
        let records = darklight_par::par_map(&corpus.users, threads, |_, user| {
            let text = select_text(user, self.word_budget);
            let doc = PreparedDoc::prepare(&text, Some(&self.lemmatizer));
            let counted = CountedDoc::from_prepared(&doc, self.max_word_n, self.max_char_n);
            let profile = profiles.build(&user.timestamps()).ok();
            Record {
                alias: user.alias.clone(),
                persona: user.persona,
                facts: user.facts.clone(),
                text,
                doc,
                counted,
                profile,
            }
        });
        self.metrics
            .counter("dataset.records_built")
            .add(records.len() as u64);
        Dataset::with_orders(
            corpus.name.clone(),
            records,
            self.max_word_n,
            self.max_char_n,
        )
    }
}

impl Default for DatasetBuilder {
    fn default() -> DatasetBuilder {
        DatasetBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darklight_corpus::model::{Post, User};

    fn corpus() -> Corpus {
        let mut c = Corpus::new("t");
        let mut u = User::new("writer", Some(9));
        // 40 weekday posts (Mondays–Fridays from 2017-02-06), ~20 words each.
        let base = 1_486_375_200i64;
        for i in 0..40 {
            let ts = base + (i / 5) * 7 * 86_400 + (i % 5) * 86_400;
            u.posts.push(Post::new(
                format!("a reasonably long message number {i} with some filler words to cross twenty words in total for testing"),
                ts,
            ));
        }
        c.users.push(u);
        let mut thin = User::new("thin", None);
        thin.posts.push(Post::new("just one tiny post", base));
        c.users.push(thin);
        c
    }

    #[test]
    fn build_produces_profiles_when_possible() {
        let ds = DatasetBuilder::new().build(&corpus());
        assert_eq!(ds.len(), 2);
        let writer = &ds.records[ds.index_of("writer").unwrap()];
        assert!(writer.profile.is_some());
        assert!(writer.doc.word_len() > 100);
        let thin = &ds.records[ds.index_of("thin").unwrap()];
        assert!(thin.profile.is_none());
    }

    #[test]
    fn word_budget_respected() {
        let ds = DatasetBuilder::new().with_word_budget(50).build(&corpus());
        let writer = &ds.records[0];
        // Longest-first selection stops once the budget is crossed; the
        // last message may overshoot by one message's worth.
        assert!(writer.doc.word_len() >= 50);
        assert!(writer.doc.word_len() < 50 + 25);
    }

    #[test]
    fn with_word_budget_truncates() {
        let ds = DatasetBuilder::new().build(&corpus());
        let cut = ds.with_word_budget(30);
        assert_eq!(cut.records[0].doc.word_len(), 30);
        assert_eq!(
            cut.records[1].doc.word_len().min(30),
            cut.records[1].doc.word_len()
        );
    }

    #[test]
    fn merged_keeps_all_records() {
        let ds = DatasetBuilder::new().build(&corpus());
        let merged = ds.merged_with(&ds, "double");
        assert_eq!(merged.len(), 4);
        assert_eq!(merged.name, "double");
    }

    #[test]
    fn facts_and_persona_pass_through() {
        let mut c = corpus();
        c.users[0].facts.push(darklight_corpus::model::Fact::new(
            darklight_corpus::model::FactKind::City,
            "miami",
        ));
        let ds = DatasetBuilder::new().build(&c);
        assert_eq!(ds.records[0].persona, Some(9));
        assert_eq!(ds.records[0].facts.len(), 1);
    }

    #[test]
    fn index_of_finds_every_alias_and_first_duplicate() {
        let ds = DatasetBuilder::new().build(&corpus());
        assert_eq!(ds.index_of("writer"), Some(0));
        assert_eq!(ds.index_of("thin"), Some(1));
        assert_eq!(ds.index_of("missing"), None);
        // Self-merge duplicates every alias; the map must report the first
        // occurrence, like the linear scan it replaced.
        let merged = ds.merged_with(&ds, "double");
        assert_eq!(merged.index_of("writer"), Some(0));
        assert_eq!(merged.index_of("thin"), Some(1));
    }

    /// Regression: `build` and `with_word_budget` used to hardcode the
    /// paper's `(3, 5)` n-gram maxima, silently ignoring configured
    /// orders. With `max_word_n = 2`, no counted 3-gram may exist; with
    /// `max_word_n = 4`, 4-grams must.
    #[test]
    fn configured_ngram_orders_respected() {
        let word_order = |key: &str| key.split(' ').count();
        let bigrams_only = DatasetBuilder::new()
            .with_ngram_orders(2, 3)
            .build(&corpus());
        assert_eq!(bigrams_only.ngram_orders(), (2, 3));
        let counted = &bigrams_only.records[0].counted;
        assert!(counted.word_counts().keys().any(|k| word_order(k) == 2));
        assert!(
            counted.word_counts().keys().all(|k| word_order(k) <= 2),
            "an order-2 dataset must not count word 3-grams"
        );
        assert!(counted.char_counts().keys().all(|k| k.chars().count() <= 3));

        let four = DatasetBuilder::new()
            .with_ngram_orders(4, 5)
            .build(&corpus());
        assert!(four.records[0]
            .counted
            .word_counts()
            .keys()
            .any(|k| word_order(k) == 4));

        // The budget sweep recounts at the dataset's orders, not (3, 5).
        let cut = bigrams_only.with_word_budget(30);
        assert_eq!(cut.ngram_orders(), (2, 3));
        assert!(cut.records[0]
            .counted
            .word_counts()
            .keys()
            .all(|k| word_order(k) <= 2));
    }

    #[test]
    fn build_is_deterministic_across_thread_counts() {
        let c = corpus();
        let serial = DatasetBuilder::new().with_threads(1).build(&c);
        for threads in [2, 7] {
            let par = DatasetBuilder::new().with_threads(threads).build(&c);
            assert_eq!(serial.len(), par.len());
            for (a, b) in serial.records.iter().zip(&par.records) {
                assert_eq!(a.alias, b.alias, "threads = {threads}");
                assert_eq!(a.text, b.text);
                assert_eq!(a.counted.word_counts(), b.counted.word_counts());
                assert_eq!(a.counted.char_counts(), b.counted.char_counts());
            }
        }
    }
}
