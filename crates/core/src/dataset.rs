//! Attribution-ready datasets.
//!
//! A [`Dataset`] is a polished corpus reduced to what the attribution
//! engine consumes: per alias, the 1,500-word longest-first text selection
//! (§IV-D), its prepared/precounted form, and the daily activity profile
//! (when the alias has enough usable timestamps). Ground-truth metadata
//! (persona ids, leaked facts) rides along untouched for the evaluation
//! layer.

use darklight_activity::profile::{DailyActivityProfile, ProfileBuilder, ProfilePolicy};
use darklight_corpus::model::{Corpus, Fact};
use darklight_corpus::refine::select_text;
use darklight_features::pipeline::{CountedDoc, PreparedDoc};
use darklight_text::lemma::Lemmatizer;

/// One attribution-ready alias.
#[derive(Debug, Clone)]
pub struct Record {
    /// The alias name.
    pub alias: String,
    /// Ground truth: persona id, if this is a persona-backed alias.
    pub persona: Option<u64>,
    /// Ground truth: facts leaked by this alias.
    pub facts: Vec<Fact>,
    /// The selected text (longest-first, word-budgeted).
    pub text: String,
    /// Tokenized/lemmatized form of `text`.
    pub doc: PreparedDoc,
    /// Precomputed n-gram counts of `doc`.
    pub counted: CountedDoc,
    /// The daily activity profile, when buildable.
    pub profile: Option<DailyActivityProfile>,
}

/// A named set of attribution-ready records.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (usually the forum name).
    pub name: String,
    /// The records.
    pub records: Vec<Record>,
}

impl Dataset {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Index of an alias, if present.
    pub fn index_of(&self, alias: &str) -> Option<usize> {
        self.records.iter().position(|r| r.alias == alias)
    }

    /// Restricts every record's document to the first `words` word tokens
    /// (the Table III word-budget sweep). Profiles are kept as they are —
    /// the sweep varies text, not timestamps.
    pub fn with_word_budget(&self, words: usize) -> Dataset {
        let records = self
            .records
            .iter()
            .map(|r| {
                let doc = r.doc.truncate_words(words);
                let counted = CountedDoc::from_prepared(&doc, 3, 5);
                Record {
                    alias: r.alias.clone(),
                    persona: r.persona,
                    facts: r.facts.clone(),
                    text: r.text.clone(),
                    doc,
                    counted,
                    profile: r.profile.clone(),
                }
            })
            .collect();
        Dataset {
            name: self.name.clone(),
            records,
        }
    }

    /// Concatenates two datasets (the paper merges TMG and DM into a
    /// single DarkWeb dataset in §IV-G).
    pub fn merged_with(&self, other: &Dataset, name: impl Into<String>) -> Dataset {
        let mut records = self.records.clone();
        records.extend(other.records.iter().cloned());
        Dataset {
            name: name.into(),
            records,
        }
    }
}

/// Builds [`Dataset`]s from corpora.
#[derive(Debug)]
pub struct DatasetBuilder {
    /// Word budget per alias (paper: 1,500).
    pub word_budget: usize,
    /// Profile policy (paper defaults: UTC, 30 timestamps, weekends and
    /// holidays excluded).
    pub profile_policy: ProfilePolicy,
    lemmatizer: Lemmatizer,
}

impl DatasetBuilder {
    /// Builder with the paper's settings.
    pub fn new() -> DatasetBuilder {
        DatasetBuilder {
            word_budget: crate::PAPER_WORD_BUDGET,
            profile_policy: ProfilePolicy::default(),
            lemmatizer: Lemmatizer::new(),
        }
    }

    /// Sets the per-alias word budget.
    pub fn with_word_budget(mut self, words: usize) -> DatasetBuilder {
        self.word_budget = words;
        self
    }

    /// Builds the dataset: selects text, prepares and counts documents,
    /// builds activity profiles. Aliases whose profile cannot be built
    /// keep `profile = None` (their vectors simply lack the activity
    /// block).
    pub fn build(&self, corpus: &Corpus) -> Dataset {
        let profiles = ProfileBuilder::new(self.profile_policy);
        let records = corpus
            .users
            .iter()
            .map(|user| {
                let text = select_text(user, self.word_budget);
                let doc = PreparedDoc::prepare(&text, Some(&self.lemmatizer));
                let counted = CountedDoc::from_prepared(&doc, 3, 5);
                let profile = profiles.build(&user.timestamps()).ok();
                Record {
                    alias: user.alias.clone(),
                    persona: user.persona,
                    facts: user.facts.clone(),
                    text,
                    doc,
                    counted,
                    profile,
                }
            })
            .collect();
        Dataset {
            name: corpus.name.clone(),
            records,
        }
    }
}

impl Default for DatasetBuilder {
    fn default() -> DatasetBuilder {
        DatasetBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darklight_corpus::model::{Post, User};

    fn corpus() -> Corpus {
        let mut c = Corpus::new("t");
        let mut u = User::new("writer", Some(9));
        // 40 weekday posts (Mondays–Fridays from 2017-02-06), ~20 words each.
        let base = 1_486_375_200i64;
        for i in 0..40 {
            let ts = base + (i / 5) * 7 * 86_400 + (i % 5) * 86_400;
            u.posts.push(Post::new(
                format!("a reasonably long message number {i} with some filler words to cross twenty words in total for testing"),
                ts,
            ));
        }
        c.users.push(u);
        let mut thin = User::new("thin", None);
        thin.posts.push(Post::new("just one tiny post", base));
        c.users.push(thin);
        c
    }

    #[test]
    fn build_produces_profiles_when_possible() {
        let ds = DatasetBuilder::new().build(&corpus());
        assert_eq!(ds.len(), 2);
        let writer = &ds.records[ds.index_of("writer").unwrap()];
        assert!(writer.profile.is_some());
        assert!(writer.doc.word_len() > 100);
        let thin = &ds.records[ds.index_of("thin").unwrap()];
        assert!(thin.profile.is_none());
    }

    #[test]
    fn word_budget_respected() {
        let ds = DatasetBuilder::new().with_word_budget(50).build(&corpus());
        let writer = &ds.records[0];
        // Longest-first selection stops once the budget is crossed; the
        // last message may overshoot by one message's worth.
        assert!(writer.doc.word_len() >= 50);
        assert!(writer.doc.word_len() < 50 + 25);
    }

    #[test]
    fn with_word_budget_truncates() {
        let ds = DatasetBuilder::new().build(&corpus());
        let cut = ds.with_word_budget(30);
        assert_eq!(cut.records[0].doc.word_len(), 30);
        assert_eq!(
            cut.records[1].doc.word_len().min(30),
            cut.records[1].doc.word_len()
        );
    }

    #[test]
    fn merged_keeps_all_records() {
        let ds = DatasetBuilder::new().build(&corpus());
        let merged = ds.merged_with(&ds, "double");
        assert_eq!(merged.len(), 4);
        assert_eq!(merged.name, "double");
    }

    #[test]
    fn facts_and_persona_pass_through() {
        let mut c = corpus();
        c.users[0].facts.push(darklight_corpus::model::Fact::new(
            darklight_corpus::model::FactKind::City,
            "miami",
        ));
        let ds = DatasetBuilder::new().build(&c);
        assert_eq!(ds.records[0].persona, Some(9));
        assert_eq!(ds.records[0].facts.len(), 1);
    }
}
