//! The `darklight` attribution engine — the paper's primary contribution.
//!
//! Given a *known* set of aliases (with their posts and timestamps) and an
//! *unknown* alias, the pipeline of Arabnezhad et al. (ICDCS 2020) answers
//! "which known alias, if any, is the same person?" in two stages:
//!
//! 1. **Search-space reduction by k-attribution** (§IV-C): every alias is
//!    embedded with the Table II *space-reduction* features (word/char
//!    n-grams + char-class frequencies + the daily activity profile), and
//!    the `k = 10` most cosine-similar known aliases are kept.
//! 2. **Final classification** (§IV-E/I): the feature space is *re-fitted*
//!    on just those k candidates (changing the selected n-grams and the
//!    TF-IDF weights), the candidates are re-scored, and the best pair is
//!    emitted if its similarity clears a calibrated threshold
//!    (`t = 0.4190` in the paper).
//!
//! Modules:
//! * [`dataset`] — turns polished corpora into attribution-ready records
//!   (1,500-word longest-first text budget, activity profiles);
//! * [`attrib`] — the inverted-index cosine ranker and k-attribution;
//! * [`twostage`] — the full two-stage algorithm (§IV-I);
//! * [`baseline`] — the Standard (char free-space 4-gram) and Koppel
//!   (feature-subsampling vote) baselines of §IV-F;
//! * [`batch`] — the RAM-bounded hierarchical batching of §IV-J;
//! * [`checkpoint`] — crash-recovery state for batched runs;
//! * [`artifact`] — persisted fit artifacts (fit once, serve many);
//! * [`linker`] — the high-level corpus-to-corpus linking API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod attrib;
pub mod baseline;
pub mod batch;
pub mod calibrate;
pub mod checkpoint;
pub mod confidence;
pub mod dataset;
pub mod explain;
pub mod linker;
pub mod session;
pub mod twostage;

pub use artifact::FitArtifact;
pub use attrib::CandidateIndex;
pub use batch::{BatchConfig, BatchError, CheckpointSpec};
pub use calibrate::{calibrate_threshold, Calibration};
pub use confidence::MatchConfidence;
pub use dataset::{Dataset, DatasetBuilder, Record};
pub use explain::{explain_pair, MatchExplanation};
pub use linker::{AliasMatch, Linker};
pub use session::LinkSession;
pub use twostage::{RankedMatch, TwoStage, TwoStageConfig};

/// The paper's global similarity threshold (§IV-E).
pub const PAPER_THRESHOLD: f64 = 0.4190;

/// The paper's candidate-set size for search-space reduction (§IV-C).
pub const PAPER_K: usize = 10;

/// The paper's per-alias word budget (§IV-C1/Table III).
pub const PAPER_WORD_BUDGET: usize = 1_500;

/// The paper's maximum word n-gram length (§IV-A, Table II).
pub const PAPER_MAX_WORD_N: usize = 3;

/// The paper's maximum char n-gram length (§IV-A, Table II).
pub const PAPER_MAX_CHAR_N: usize = 5;
