//! Match explanation: *why* did the pipeline link these two aliases?
//!
//! A score of 0.87 convinces no investigator (and no court). This module
//! decomposes a matched pair's similarity into evidence a human can check:
//! the shared n-grams that contributed the most TF-IDF weight, the
//! per-block similarity split (word style vs char style vs punctuation
//! habits vs schedule), and the overlapping activity hours. It mirrors
//! the paper's manual verification step (§V-A), where the authors read
//! both aliases' posts looking for the same phrasing and the same habits.

use crate::dataset::Record;
use darklight_features::ngram::{char_ngrams_up_to, word_ngrams_up_to};
use darklight_features::vocab::count_terms;
use std::collections::HashMap;
use std::fmt;

/// One piece of shared stylometric evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedFeature {
    /// The n-gram both aliases use.
    pub gram: String,
    /// Occurrences in the first alias's text.
    pub count_a: u32,
    /// Occurrences in the second alias's text.
    pub count_b: u32,
    /// Evidence weight: `min(count_a, count_b) * len(gram)` — longer
    /// shared phrases are rarer and more identifying.
    pub weight: f64,
}

/// Per-channel similarity decomposition for one pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchExplanation {
    /// Top shared word n-grams, by evidence weight.
    pub shared_word_grams: Vec<SharedFeature>,
    /// Top shared character n-grams (n ≥ 3; shorter ones are ubiquitous).
    pub shared_char_grams: Vec<SharedFeature>,
    /// Cosine similarity of the two daily activity profiles, if both
    /// aliases have one.
    pub activity_similarity: Option<f64>,
    /// Hours (UTC) where both aliases are active above 5% of their posts.
    pub common_active_hours: Vec<usize>,
    /// Jaccard overlap of the two word-unigram vocabularies.
    pub vocabulary_overlap: f64,
}

impl MatchExplanation {
    /// A one-paragraph, human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("shared phrases:\n");
        for f in self.shared_word_grams.iter().take(8) {
            out.push_str(&format!(
                "  {:<30} {}x / {}x\n",
                format!("{:?}", f.gram),
                f.count_a,
                f.count_b
            ));
        }
        out.push_str(&format!(
            "vocabulary overlap (jaccard): {:.2}\n",
            self.vocabulary_overlap
        ));
        match self.activity_similarity {
            Some(s) => {
                out.push_str(&format!("activity profile cosine:      {s:.2}\n"));
                let hours: Vec<String> = self
                    .common_active_hours
                    .iter()
                    .map(|h| format!("{h:02}:00"))
                    .collect();
                out.push_str(&format!(
                    "common active hours (UTC):    {}\n",
                    hours.join(" ")
                ));
            }
            None => out.push_str("activity profile:             unavailable\n"),
        }
        out
    }
}

impl fmt::Display for MatchExplanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// How many shared features to keep per channel.
const TOP_FEATURES: usize = 20;

/// Explains a matched pair of records.
pub fn explain_pair(a: &Record, b: &Record) -> MatchExplanation {
    let words_a = count_terms(word_ngrams_up_to(a.doc.words(), 3));
    let words_b = count_terms(word_ngrams_up_to(b.doc.words(), 3));
    let chars_a = count_terms(char_ngrams_up_to(a.doc.char_text(), 5));
    let chars_b = count_terms(char_ngrams_up_to(b.doc.char_text(), 5));

    let shared_word_grams = top_shared(&words_a, &words_b, |g| {
        // Prefer multi-word phrases and rare-looking unigrams.
        g.contains(' ') || g.len() >= 6
    });
    let shared_char_grams = top_shared(&chars_a, &chars_b, |g| g.chars().count() >= 3);

    let (activity_similarity, common_active_hours) = match (&a.profile, &b.profile) {
        (Some(pa), Some(pb)) => {
            let hours = (0..24)
                .filter(|&h| pa.share(h) > 0.05 && pb.share(h) > 0.05)
                .collect();
            (Some(pa.cosine(pb)), hours)
        }
        _ => (None, Vec::new()),
    };

    let uni_a: std::collections::HashSet<&String> = a.doc.words().iter().collect();
    let uni_b: std::collections::HashSet<&String> = b.doc.words().iter().collect();
    let union = uni_a.union(&uni_b).count();
    let vocabulary_overlap = if union == 0 {
        0.0
    } else {
        uni_a.intersection(&uni_b).count() as f64 / union as f64
    };

    MatchExplanation {
        shared_word_grams,
        shared_char_grams,
        activity_similarity,
        common_active_hours,
        vocabulary_overlap,
    }
}

fn top_shared(
    a: &HashMap<String, u32>,
    b: &HashMap<String, u32>,
    interesting: impl Fn(&str) -> bool,
) -> Vec<SharedFeature> {
    let mut shared: Vec<SharedFeature> = a
        .iter()
        .filter(|(gram, _)| interesting(gram))
        .filter_map(|(gram, &ca)| {
            b.get(gram).map(|&cb| SharedFeature {
                gram: gram.clone(),
                count_a: ca,
                count_b: cb,
                weight: ca.min(cb) as f64 * gram.len() as f64,
            })
        })
        .collect();
    shared.sort_by(|x, y| {
        darklight_order::cmp_f64_desc(x.weight, y.weight).then_with(|| x.gram.cmp(&y.gram))
    });
    shared.truncate(TOP_FEATURES);
    shared
}

#[cfg(test)]
mod tests {
    use super::*;
    use darklight_activity::profile::DailyActivityProfile;
    use darklight_features::pipeline::{CountedDoc, PreparedDoc};

    fn record(text: &str, peak_hour: Option<usize>) -> Record {
        let doc = PreparedDoc::prepare(text, None);
        let counted = CountedDoc::from_prepared(&doc, 3, 5);
        let profile = peak_hour.map(|h| {
            let mut counts = [0u32; 24];
            counts[h] = 8;
            counts[(h + 1) % 24] = 4;
            DailyActivityProfile::from_counts(counts).unwrap()
        });
        Record {
            alias: "x".into(),
            persona: None,
            facts: Vec::new(),
            text: text.to_string(),
            doc,
            counted,
            profile,
        }
    }

    #[test]
    fn shared_phrases_surface() {
        let a = record(
            "the stealth packaging was perfect as always, landed in four days",
            Some(9),
        );
        let b = record(
            "again the stealth packaging was perfect, landed quickly this time",
            Some(9),
        );
        let ex = explain_pair(&a, &b);
        assert!(
            ex.shared_word_grams
                .iter()
                .any(|f| f.gram.contains("stealth packaging")),
            "{:?}",
            ex.shared_word_grams
        );
        assert!(ex.vocabulary_overlap > 0.3);
    }

    #[test]
    fn activity_channel_reported() {
        let a = record("some words here about things", Some(9));
        let b = record("other words there about stuff", Some(9));
        let ex = explain_pair(&a, &b);
        assert!(ex.activity_similarity.unwrap() > 0.9);
        assert!(ex.common_active_hours.contains(&9));
    }

    #[test]
    fn missing_profiles_handled() {
        let a = record("words", None);
        let b = record("words", Some(5));
        let ex = explain_pair(&a, &b);
        assert!(ex.activity_similarity.is_none());
        assert!(ex.common_active_hours.is_empty());
        assert!(ex.render().contains("unavailable"));
    }

    #[test]
    fn disjoint_texts_no_shared_words() {
        let a = record("alpha bravo charlie delta echo foxtrot", Some(3));
        let b = record("zulu yankee xray whiskey victor uniform", Some(15));
        let ex = explain_pair(&a, &b);
        assert!(ex.shared_word_grams.is_empty());
        assert_eq!(ex.vocabulary_overlap, 0.0);
        assert!(ex.common_active_hours.is_empty());
    }

    #[test]
    fn weights_prefer_longer_phrases() {
        let a = record(
            "i really cannot recommend this vendor enough honestly, i really cannot recommend",
            None,
        );
        let b = record("i really cannot recommend this place at all honestly", None);
        let ex = explain_pair(&a, &b);
        let first = &ex.shared_word_grams[0];
        assert!(
            first.gram.split(' ').count() >= 2,
            "top gram {:?}",
            first.gram
        );
    }

    #[test]
    fn render_is_complete() {
        let a = record("the same words appear in both messages here today", Some(7));
        let b = record(
            "the same words appear in both messages here tonight",
            Some(7),
        );
        let text = explain_pair(&a, &b).to_string();
        assert!(text.contains("shared phrases"));
        assert!(text.contains("vocabulary overlap"));
        assert!(text.contains("activity profile cosine"));
    }
}
