//! Threshold calibration (§IV-E of the paper), as a library API.
//!
//! The paper finds its global threshold by running the two-stage pipeline
//! on a labeled split (alter-egos whose true aliases are known), drawing
//! the precision-recall trade-off over the best-match scores, and picking
//! the threshold at the target recall. This module packages that protocol:
//! hand it a known set and a labeled unknown set, get back the threshold
//! and its operating point, plus a validation hook for a second split.

use crate::dataset::Dataset;
use crate::twostage::{RankedMatch, TwoStage};

/// A labeled operating point on the score scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// The similarity threshold.
    pub threshold: f64,
    /// Precision of emitted pairs at this threshold.
    pub precision: f64,
    /// Recall over findable unknowns at this threshold.
    pub recall: f64,
}

/// The calibration outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The chosen operating point.
    pub chosen: OperatingPoint,
    /// The full threshold sweep, highest threshold first.
    pub sweep: Vec<OperatingPoint>,
    /// Number of unknowns whose true alias was present (recall
    /// denominator).
    pub positives: usize,
}

impl Calibration {
    /// The operating point obtained by applying the chosen threshold to a
    /// different sweep (e.g. the W2 validation split).
    pub fn apply_to(&self, other: &Calibration) -> OperatingPoint {
        let mut best = OperatingPoint {
            threshold: self.chosen.threshold,
            precision: 1.0,
            recall: 0.0,
        };
        for p in &other.sweep {
            if p.threshold >= self.chosen.threshold {
                best = OperatingPoint {
                    threshold: self.chosen.threshold,
                    ..*p
                };
            } else {
                break;
            }
        }
        best
    }
}

/// Errors from calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrateError {
    /// The unknown set carries no alias whose persona exists in the known
    /// set, so recall is undefined.
    NoPositives,
    /// The target recall was never reached at any threshold.
    TargetUnreachable,
}

impl std::fmt::Display for CalibrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrateError::NoPositives => {
                f.write_str("no unknown alias has its true alias in the known set")
            }
            CalibrateError::TargetUnreachable => {
                f.write_str("target recall is never reached on the calibration split")
            }
        }
    }
}

impl std::error::Error for CalibrateError {}

/// Runs the full §IV-E protocol: two-stage pipeline on the labeled split,
/// sweep all best-match scores as thresholds, and choose the highest
/// threshold reaching `target_recall`.
///
/// # Errors
///
/// [`CalibrateError::NoPositives`] when the split has no findable unknowns;
/// [`CalibrateError::TargetUnreachable`] when even threshold 0 cannot reach
/// the target (e.g. the reduction stage lost too many true aliases).
pub fn calibrate_threshold(
    engine: &TwoStage,
    known: &Dataset,
    labeled_unknowns: &Dataset,
    target_recall: f64,
) -> Result<Calibration, CalibrateError> {
    let results = engine.run(known, labeled_unknowns);
    calibrate_from_results(&results, known, labeled_unknowns, target_recall)
}

/// Like [`calibrate_threshold`] but reusing existing pipeline results.
pub fn calibrate_from_results(
    results: &[RankedMatch],
    known: &Dataset,
    unknown: &Dataset,
    target_recall: f64,
) -> Result<Calibration, CalibrateError> {
    // Label best matches (inline to keep `core` independent of `eval`).
    struct L {
        score: f64,
        correct: bool,
        has_truth: bool,
    }
    let labeled: Vec<L> = results
        .iter()
        .filter_map(|m| {
            let persona = unknown.records[m.unknown].persona;
            let has_truth = persona
                .map(|p| known.records.iter().any(|r| r.persona == Some(p)))
                .unwrap_or(false);
            let best = m.best()?;
            let correct = match (persona, known.records[best.index].persona) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            };
            Some(L {
                score: best.score,
                correct,
                has_truth,
            })
        })
        .collect();
    let positives = labeled.iter().filter(|l| l.has_truth).count();
    if positives == 0 {
        return Err(CalibrateError::NoPositives);
    }
    let mut sorted: Vec<&L> = labeled.iter().collect();
    sorted.sort_by(|a, b| darklight_order::cmp_f64_desc(a.score, b.score));
    let mut sweep = Vec::new();
    let mut emitted = 0usize;
    let mut correct = 0usize;
    let mut i = 0;
    while i < sorted.len() {
        let t = sorted[i].score;
        if t.is_nan() {
            // NaN sorts last and can never clear a real threshold; stop
            // here — `score == t` would never consume it (NaN != NaN).
            break;
        }
        while i < sorted.len() && sorted[i].score == t {
            emitted += 1;
            if sorted[i].correct {
                correct += 1;
            }
            i += 1;
        }
        sweep.push(OperatingPoint {
            threshold: t,
            precision: correct as f64 / emitted as f64,
            recall: correct as f64 / positives as f64,
        });
    }
    let chosen = sweep
        .iter()
        .find(|p| p.recall >= target_recall)
        .copied()
        .ok_or(CalibrateError::TargetUnreachable)?;
    Ok(Calibration {
        chosen,
        sweep,
        positives,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrib::Ranked;
    use crate::dataset::Record;
    use darklight_features::pipeline::{CountedDoc, PreparedDoc};

    fn record(persona: Option<u64>) -> Record {
        let doc = PreparedDoc::prepare("t", None);
        let counted = CountedDoc::from_prepared(&doc, 3, 5);
        Record {
            alias: format!("{persona:?}"),
            persona,
            facts: Vec::new(),
            text: String::new(),
            doc,
            counted,
            profile: None,
        }
    }

    fn dataset(personas: &[Option<u64>]) -> Dataset {
        Dataset::new("d", personas.iter().map(|&p| record(p)).collect())
    }

    fn rm(unknown: usize, best: usize, score: f64) -> RankedMatch {
        let ranked = vec![Ranked { index: best, score }];
        RankedMatch {
            unknown,
            stage1: ranked.clone(),
            stage2: ranked,
        }
    }

    #[test]
    fn picks_highest_threshold_at_target() {
        let known = dataset(&[Some(0), Some(1), Some(2), Some(3)]);
        let unknown = dataset(&[Some(0), Some(1), Some(2), Some(3)]);
        // Scores: two high correct, one low correct, one wrong in between.
        let results = vec![
            rm(0, 0, 0.9),
            rm(1, 1, 0.8),
            rm(2, 0, 0.7), // wrong (persona 2 matched to 0)
            rm(3, 3, 0.6),
        ];
        let cal = calibrate_from_results(&results, &known, &unknown, 0.5).unwrap();
        assert_eq!(cal.positives, 4);
        assert_eq!(cal.chosen.threshold, 0.8);
        assert_eq!(cal.chosen.precision, 1.0);
        assert_eq!(cal.chosen.recall, 0.5);
        // Asking for 75% recall must dip past the wrong match.
        let cal75 = calibrate_from_results(&results, &known, &unknown, 0.75).unwrap();
        assert_eq!(cal75.chosen.threshold, 0.6);
        assert!((cal75.chosen.precision - 0.75).abs() < 1e-12);
    }

    #[test]
    fn nan_scores_are_tolerated_and_rank_last() {
        // Regression: the threshold sweep sorted with partial_cmp().expect()
        // and panicked when a zero-norm vector upstream produced a NaN
        // score; NaN now sorts after every real score, so calibration
        // still finds the real operating points.
        let known = dataset(&[Some(0), Some(1)]);
        let unknown = dataset(&[Some(0), Some(1)]);
        let results = vec![rm(0, 0, 0.9), rm(1, 1, f64::NAN)];
        let cal = calibrate_from_results(&results, &known, &unknown, 0.5).unwrap();
        assert_eq!(cal.chosen.threshold, 0.9);
    }

    #[test]
    fn no_positives_errors() {
        let known = dataset(&[Some(0)]);
        let unknown = dataset(&[Some(9), None]);
        let results = vec![rm(0, 0, 0.9), rm(1, 0, 0.8)];
        assert_eq!(
            calibrate_from_results(&results, &known, &unknown, 0.5).unwrap_err(),
            CalibrateError::NoPositives
        );
    }

    #[test]
    fn unreachable_target_errors() {
        let known = dataset(&[Some(0), Some(1)]);
        let unknown = dataset(&[Some(0), Some(1)]);
        // Both matched to the wrong alias: recall never exceeds 0.
        let results = vec![rm(0, 1, 0.9), rm(1, 0, 0.8)];
        assert_eq!(
            calibrate_from_results(&results, &known, &unknown, 0.5).unwrap_err(),
            CalibrateError::TargetUnreachable
        );
    }

    #[test]
    fn apply_to_transfers_threshold() {
        let known = dataset(&[Some(0), Some(1)]);
        let unknown = dataset(&[Some(0), Some(1)]);
        let w1 =
            calibrate_from_results(&[rm(0, 0, 0.9), rm(1, 1, 0.7)], &known, &unknown, 0.5).unwrap();
        let w2 = calibrate_from_results(&[rm(0, 0, 0.95), rm(1, 0, 0.5)], &known, &unknown, 0.5)
            .unwrap();
        let applied = w1.apply_to(&w2);
        assert_eq!(applied.threshold, w1.chosen.threshold);
        // At threshold 0.9, W2 emits only its 0.95 pair (correct).
        assert_eq!(applied.precision, 1.0);
        assert_eq!(applied.recall, 0.5);
    }

    #[test]
    fn error_display() {
        assert!(CalibrateError::NoPositives
            .to_string()
            .contains("no unknown"));
        assert!(CalibrateError::TargetUnreachable
            .to_string()
            .contains("never reached"));
    }
}
