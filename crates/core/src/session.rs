//! A persistent linking session: fit once, query many times.
//!
//! [`TwoStage::run`](crate::twostage::TwoStage::run) refits the stage-1
//! feature space on every call — right for batch experiments, wasteful for
//! the investigator workflow the paper motivates ("support the authorities
//! to drastically reduce the set of users under investigation"), where one
//! fixed known set is probed with new unknown aliases as they surface.
//! [`LinkSession`] freezes the fitted space and inverted index and answers
//! single-alias queries in milliseconds.

use crate::attrib::CandidateIndex;
use crate::dataset::{Dataset, DatasetBuilder, Record};
use crate::twostage::{RankedMatch, TwoStage, TwoStageConfig};
use darklight_corpus::model::User;
use darklight_features::pipeline::FeatureExtractor;
use darklight_features::sparse::SparseVector;

/// A reusable query session over a fixed known set.
#[derive(Debug)]
pub struct LinkSession {
    engine: TwoStage,
    known: Dataset,
    space: darklight_features::pipeline::FeatureSpace,
    index: CandidateIndex,
    builder: DatasetBuilder,
}

impl LinkSession {
    /// Fits the stage-1 space and index on `known`. Everything expensive
    /// happens here.
    pub fn new(config: TwoStageConfig, known: Dataset) -> LinkSession {
        let threads = config.effective_threads();
        let space = FeatureExtractor::new(config.reduction.clone())
            .with_threads(threads)
            .fit_counted(known.records.iter().map(|r| &r.counted));
        let vectors: Vec<SparseVector> = darklight_par::par_map(&known.records, threads, |_, r| {
            space.vectorize_counted(&r.counted, r.profile.as_ref())
        });
        let index = CandidateIndex::build(&vectors, space.dim());
        // Ad-hoc query users must be counted at the n-gram maxima the
        // session's stage configurations score with.
        let max_word_n = config
            .reduction
            .max_word_n
            .max(config.final_stage.max_word_n);
        let max_char_n = config
            .reduction
            .max_char_n
            .max(config.final_stage.max_char_n);
        LinkSession {
            engine: TwoStage::new(config),
            known,
            space,
            index,
            builder: DatasetBuilder::new()
                .with_ngram_orders(max_word_n, max_char_n)
                .with_threads(threads),
        }
    }

    /// The known dataset.
    pub fn known(&self) -> &Dataset {
        &self.known
    }

    /// Number of indexed known aliases.
    pub fn len(&self) -> usize {
        self.known.len()
    }

    /// `true` when the known set is empty.
    pub fn is_empty(&self) -> bool {
        self.known.is_empty()
    }

    /// Queries one prepared record: stage-1 lookup in the frozen index,
    /// then the usual stage-2 refit over the k candidates.
    pub fn query_record(&self, record: &Record) -> RankedMatch {
        let v = self
            .space
            .vectorize_counted(&record.counted, record.profile.as_ref());
        let candidates = self.index.top_k(&v, self.engine.config().k);
        let (max_word_n, max_char_n) = self.known.ngram_orders();
        let unknown = Dataset::with_orders("query", vec![record.clone()], max_word_n, max_char_n);
        self.engine
            .rescore(&self.known, &unknown, vec![candidates])
            .into_iter()
            .next()
            // audit:allow(no-naked-unwrap) -- rescore returns one RankedMatch per unknown and exactly one is passed
            .expect("one query yields one result")
    }

    /// Queries a raw forum user (runs text selection, preparation, and
    /// profile building first). The user should already be polished.
    pub fn query_user(&self, user: &User) -> RankedMatch {
        let ds = self.builder.build(&single_user_corpus(user));
        self.query_record(&ds.records[0])
    }

    /// Convenience: the best alias match for a user, if it clears the
    /// configured threshold.
    pub fn best_match(&self, user: &User) -> Option<(String, f64)> {
        let m = self.query_user(user);
        let best = m.best()?;
        (best.score >= self.engine.config().threshold)
            .then(|| (self.known.records[best.index].alias.clone(), best.score))
    }
}

fn single_user_corpus(user: &User) -> darklight_corpus::model::Corpus {
    let mut c = darklight_corpus::model::Corpus::new("query");
    c.users.push(user.clone());
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use darklight_corpus::model::{Corpus, Post};

    fn corpus() -> Corpus {
        let mut c = Corpus::new("known");
        let base = 1_486_375_200i64;
        let vocabs = [
            ("beekeeper", "hive nectar swarm frames apiary propolis"),
            ("welder", "torch flux bead electrode weld seam"),
            ("baker", "sourdough crumb proofing levain hydration oven"),
        ];
        for (pid, (name, vocab)) in vocabs.iter().enumerate() {
            let words: Vec<&str> = vocab.split(' ').collect();
            let mut u = User::new(*name, Some(pid as u64));
            for i in 0..45i64 {
                let ts = base + (i / 5) * 7 * 86_400 + (i % 5) * 86_400;
                let w1 = words[i as usize % words.len()];
                let w2 = words[(i as usize + 2) % words.len()];
                u.posts.push(Post::new(
                    format!("checked the {w1} this morning and compared {w2} notes with the group before fixing the {w1} again session {i}"),
                    ts,
                ));
            }
            c.users.push(u);
        }
        c
    }

    fn probe(persona: u64, vocab: &str, salt: i64) -> User {
        let words: Vec<&str> = vocab.split(' ').collect();
        let mut u = User::new("probe", Some(persona));
        let base = 1_486_375_200i64 + salt;
        for i in 0..45i64 {
            let ts = base + (i / 5) * 7 * 86_400 + (i % 5) * 86_400;
            let w1 = words[i as usize % words.len()];
            let w2 = words[(i as usize + 1) % words.len()];
            u.posts.push(Post::new(
                format!("more {w1} talk today, the {w2} details took a while but the {w1} held up fine entry {i}"),
                ts,
            ));
        }
        u
    }

    fn session() -> LinkSession {
        let ds = DatasetBuilder::new().build(&corpus());
        LinkSession::new(
            TwoStageConfig {
                k: 2,
                threads: 1,
                threshold: 0.3,
                ..TwoStageConfig::default()
            },
            ds,
        )
    }

    #[test]
    fn queries_find_the_right_alias() {
        let s = session();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let (alias, score) = s
            .best_match(&probe(0, "hive nectar swarm frames apiary propolis", 7_200))
            .expect("match above threshold");
        assert_eq!(alias, "beekeeper");
        assert!(score > 0.3);
        let (alias, _) = s
            .best_match(&probe(
                2,
                "sourdough crumb proofing levain hydration oven",
                3_600,
            ))
            .expect("match above threshold");
        assert_eq!(alias, "baker");
    }

    #[test]
    fn session_matches_batch_pipeline() {
        let known = DatasetBuilder::new().build(&corpus());
        let cfg = TwoStageConfig {
            k: 2,
            threads: 1,
            ..TwoStageConfig::default()
        };
        let s = LinkSession::new(cfg.clone(), known.clone());
        let probe_user = probe(1, "torch flux bead electrode weld seam", 0);
        let probe_ds = DatasetBuilder::new().build(&single_user_corpus(&probe_user));
        let batch = TwoStage::new(cfg).run(&known, &probe_ds);
        let single = s.query_record(&probe_ds.records[0]);
        assert_eq!(
            batch[0].best().map(|r| r.index),
            single.best().map(|r| r.index)
        );
        assert!((batch[0].best().unwrap().score - single.best().unwrap().score).abs() < 1e-9);
    }

    #[test]
    fn below_threshold_returns_none() {
        let ds = DatasetBuilder::new().build(&corpus());
        let s = LinkSession::new(
            TwoStageConfig {
                k: 2,
                threads: 1,
                threshold: 1.01, // unreachable
                ..TwoStageConfig::default()
            },
            ds,
        );
        assert!(s
            .best_match(&probe(0, "hive nectar swarm frames apiary propolis", 0))
            .is_none());
    }
}
