//! High-level corpus-to-corpus alias linking.
//!
//! [`Linker`] wraps the full flow the paper applies in §V: polish both
//! corpora, refine them to the minimum-data thresholds, build datasets,
//! run the two-stage pipeline, and emit alias pairs above the threshold.
//! This is the API a downstream investigator would call.

use crate::artifact::FitArtifact;
use crate::batch::{run_batched_governed, BatchConfig, BatchError, CheckpointSpec};
use crate::dataset::{Dataset, DatasetBuilder};
use crate::twostage::{TwoStage, TwoStageConfig};
use darklight_activity::profile::{ProfileBuilder, ProfilePolicy};
use darklight_corpus::model::Corpus;
use darklight_corpus::polish::{PolishConfig, Polisher};
use darklight_corpus::refine::{refine, RefineConfig};
use darklight_obs::PipelineMetrics;
use std::path::PathBuf;

/// One emitted alias pair.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasMatch {
    /// Alias in the known (searched) corpus.
    pub known_alias: String,
    /// Alias in the unknown (query) corpus.
    pub unknown_alias: String,
    /// Final-stage similarity score.
    pub score: f64,
}

/// End-to-end linker configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkerConfig {
    /// Polishing steps (paper defaults).
    pub polish: PolishConfig,
    /// Refinement thresholds (paper: 30 timestamps, 1,500 words).
    pub refine: RefineConfig,
    /// The attribution engine settings.
    pub two_stage: TwoStageConfig,
    /// Skip polishing (for pre-polished corpora).
    pub already_polished: bool,
    /// Run the RAM-bounded batched driver (§IV-J) instead of the
    /// unbatched pipeline. `None` links unbatched — unless
    /// `two_stage.govern.budget` is set, in which case the batch size is
    /// derived from the budget via [`BatchConfig::derive`]. When both are
    /// set the explicit batch size wins and the budget acts as a
    /// guard-rail: the pressure ladder shrinks breaching rounds.
    pub batch: Option<BatchConfig>,
    /// Persist batched state here after every round and resume from it on
    /// restart (see [`crate::checkpoint`]). Only meaningful when batched
    /// (an explicit `batch` or a governor memory budget).
    pub checkpoint: Option<PathBuf>,
}

/// The end-to-end linker.
#[derive(Debug)]
pub struct Linker {
    config: LinkerConfig,
    metrics: PipelineMetrics,
    polisher: Polisher,
    builder: DatasetBuilder,
}

impl Linker {
    /// Creates a linker. The `two_stage.threads` knob is the single
    /// thread-count source for the whole pipeline: polishing, dataset
    /// building, and both attribution stages all resolve their worker
    /// pools from it.
    pub fn new(config: LinkerConfig) -> Linker {
        let threads = config.two_stage.threads;
        let polisher = Polisher::new(config.polish.clone()).with_threads(threads);
        // Precount at the largest n-gram maxima any stage will score with;
        // a smaller count silently drops whole n-gram families (the old
        // hardcoded (3, 5) bug).
        let ts = &config.two_stage;
        let max_word_n = ts.reduction.max_word_n.max(ts.final_stage.max_word_n);
        let max_char_n = ts.reduction.max_char_n.max(ts.final_stage.max_char_n);
        let builder = DatasetBuilder::new()
            .with_ngram_orders(max_word_n, max_char_n)
            .with_threads(threads);
        Linker {
            config,
            metrics: PipelineMetrics::disabled(),
            polisher,
            builder,
        }
    }

    /// Records the whole pipeline — polishing, feature extraction,
    /// candidate indexing, both attribution stages — into `metrics`.
    /// Metrics only observe; enabling them does not change which pairs
    /// are emitted (pinned by `tests/metrics_parity.rs`).
    pub fn with_metrics(mut self, metrics: PipelineMetrics) -> Linker {
        self.polisher = Polisher::new(self.config.polish.clone())
            .with_threads(self.config.two_stage.threads)
            .with_metrics(metrics.clone());
        self.builder = self.builder.with_metrics(metrics.clone());
        self.config.two_stage.metrics = metrics.clone();
        self.metrics = metrics;
        self
    }

    /// The metrics handle (disabled unless set via
    /// [`with_metrics`](Linker::with_metrics)).
    pub fn metrics(&self) -> &PipelineMetrics {
        &self.metrics
    }

    /// The configuration.
    pub fn config(&self) -> &LinkerConfig {
        &self.config
    }

    /// Polishes + refines one corpus into an attribution dataset.
    pub fn prepare(&self, corpus: &Corpus) -> Dataset {
        let _prepare = self.metrics.timer("linker.prepare").start();
        let polished = if self.config.already_polished {
            corpus.clone()
        } else {
            self.polisher.polish(corpus).0
        };
        let profiles = ProfileBuilder::new(ProfilePolicy::default());
        let refined = refine(&polished, self.config.refine, &profiles);
        self.builder.build(&refined)
    }

    /// Runs the offline half of a fit-once/serve-many split: prepares
    /// the known corpus exactly as [`link`](Linker::link) would (polish,
    /// refine, build) and captures the stage-1 fit in a [`FitArtifact`]
    /// ready to persist. Serving the artifact through
    /// [`link_with_artifact`](Linker::link_with_artifact) reproduces the
    /// fit-every-time output byte-for-byte.
    pub fn fit_artifact(&self, known: &Corpus) -> FitArtifact {
        let _fit = self.metrics.timer("linker.fit_artifact").start();
        let known_ds = self.prepare(known);
        FitArtifact::fit(&self.config.two_stage, known_ds)
    }

    /// Links `unknown`'s aliases against a previously fitted artifact
    /// instead of refitting on a known corpus: prepares only the
    /// unknown side, ranks it against the artifact's restored space and
    /// vectors, and rescores stage 2 on the artifact's known records.
    /// Output is byte-identical to [`link`](Linker::link) over the
    /// corpus the artifact was fitted from (pinned by
    /// `tests/artifact_parity.rs` at threads 1, 2, and 7).
    ///
    /// Serving is always unbatched — batching exists to bound the
    /// *fit-side* working set, which the artifact has already paid.
    pub fn link_with_artifact(&self, artifact: &FitArtifact, unknown: &Corpus) -> Vec<AliasMatch> {
        let _link = self.metrics.timer("linker.link").start();
        let unknown_ds = self.prepare(unknown);
        if artifact.known.is_empty() || unknown_ds.is_empty() {
            return Vec::new();
        }
        let engine = TwoStage::new(self.config.two_stage.clone());
        let stage1 = engine.reduce_prefit(&artifact.space, &artifact.known_vecs, &unknown_ds);
        let ranked = engine.rescore(&artifact.known, &unknown_ds, stage1);
        engine
            .threshold_links(ranked)
            .into_iter()
            .map(|(u, k, score)| AliasMatch {
                known_alias: artifact.known.records[k].alias.clone(),
                unknown_alias: unknown_ds.records[u].alias.clone(),
                score,
            })
            .collect()
    }

    /// Links `unknown`'s aliases to `known`'s: every emitted pair says
    /// "this unknown alias is the same person as this known alias".
    ///
    /// Infallible convenience for the unbatched configuration.
    ///
    /// # Panics
    ///
    /// Panics when a batched configuration fails (invalid batch size,
    /// checkpoint error) — use [`try_link`](Linker::try_link) to handle
    /// those as values.
    pub fn link(&self, known: &Corpus, unknown: &Corpus) -> Vec<AliasMatch> {
        self.try_link(known, unknown)
            .unwrap_or_else(|e| panic!("link failed: {e}"))
    }

    /// Links two prepared datasets (see [`link`](Linker::link) for the
    /// panic contract).
    pub fn link_datasets(&self, known: &Dataset, unknown: &Dataset) -> Vec<AliasMatch> {
        self.try_link_datasets(known, unknown)
            .unwrap_or_else(|e| panic!("link failed: {e}"))
    }

    /// [`link`](Linker::link) with typed errors: invalid batch configs
    /// and checkpoint failures surface as [`BatchError`] instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// See [`run_batched_checkpointed`]; unbatched runs cannot fail.
    pub fn try_link(
        &self,
        known: &Corpus,
        unknown: &Corpus,
    ) -> Result<Vec<AliasMatch>, BatchError> {
        let known_ds = self.prepare(known);
        let unknown_ds = self.prepare(unknown);
        self.try_link_datasets(&known_ds, &unknown_ds)
    }

    /// Links two prepared datasets with typed errors.
    ///
    /// # Errors
    ///
    /// See [`try_link`](Linker::try_link); additionally
    /// [`BatchError::Govern`] when a memory budget is too small for even
    /// one candidate, when the pressure ladder cannot satisfy it, or when
    /// a stage deadline expires.
    pub fn try_link_datasets(
        &self,
        known: &Dataset,
        unknown: &Dataset,
    ) -> Result<Vec<AliasMatch>, BatchError> {
        if let Some(batch) = &self.config.batch {
            batch.validate()?;
        }
        let _link = self.metrics.timer("linker.link").start();
        if known.is_empty() || unknown.is_empty() {
            return Ok(Vec::new());
        }
        let engine = TwoStage::new(self.config.two_stage.clone());
        // An explicit batch size wins; a budget alone derives the largest
        // admissible size. With neither, the run is unbatched.
        let batch = match (&self.config.batch, &self.config.two_stage.govern.budget) {
            (Some(batch), _) => Some(batch.clone()),
            (None, Some(budget)) => Some(BatchConfig::derive(budget, known, unknown)?),
            (None, None) => None,
        };
        let pairs = match &batch {
            None => engine.link(known, unknown),
            Some(batch) => {
                let spec = self
                    .config
                    .checkpoint
                    .as_ref()
                    .map(|path| CheckpointSpec::new(path.clone()));
                let ranked = run_batched_governed(&engine, batch, known, unknown, spec.as_ref())?;
                engine.threshold_links(ranked)
            }
        };
        Ok(pairs
            .into_iter()
            .map(|(u, k, score)| AliasMatch {
                known_alias: known.records[k].alias.clone(),
                unknown_alias: unknown.records[u].alias.clone(),
                score,
            })
            .collect())
    }
}

impl Default for Linker {
    fn default() -> Linker {
        Linker::new(LinkerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darklight_corpus::model::{Post, User};

    /// Builds a corpus of `n` users with distinctive vocabulary; user 0 of
    /// each corpus is the same persona.
    fn corpus(name: &str, salt: usize) -> Corpus {
        let mut c = Corpus::new(name);
        let base = 1_486_375_200i64;
        for pid in 0..4u64 {
            let mut u = User::new(format!("{name}_user{pid}"), Some(pid));
            // Shared persona vocabulary regardless of forum; enough posts
            // and words to survive refinement.
            let vocab = match pid {
                0 => ["harpsichord", "madrigal", "counterpoint", "basso"],
                1 => ["terrarium", "isopods", "springtails", "bioactive"],
                2 => ["leatherwork", "awl", "burnishing", "saddle"],
                _ => ["homebrew", "fermenter", "sparge", "lauter"],
            };
            for i in 0..70i64 {
                let ts = base
                    + (i / 5) * 7 * 86_400
                    + (i % 5) * 86_400
                    + (pid as i64) * 7_200
                    + salt as i64; // forums differ slightly
                let w1 = vocab[i as usize % 4];
                let w2 = vocab[(i as usize + 1) % 4];
                // Unique per-post marker words keep the dedup step from
                // collapsing the corpus.
                let ma = char::from(b'a' + (i % 26) as u8);
                let mb = char::from(b'a' + ((i / 26) % 26) as u8);
                u.posts.push(Post::new(
                    format!(
                        "today the {w1} project moved forward again and i compared several {w2} methods \
                         with friends near batch {ma}{mb} before writing longer notes about {w1} \
                         techniques and the tools involved"
                    ),
                    ts,
                ));
            }
            c.users.push(u);
        }
        c
    }

    #[test]
    fn links_matching_personas_across_corpora() {
        let known = corpus("forum_a", 0);
        let unknown = corpus("forum_b", 1800);
        let mut cfg = LinkerConfig::default();
        cfg.two_stage.k = 2;
        cfg.two_stage.threshold = 0.3;
        cfg.two_stage.threads = 2;
        let linker = Linker::new(cfg);
        let matches = linker.link(&known, &unknown);
        assert!(!matches.is_empty());
        for m in &matches {
            // forum_a_userX should match forum_b_userX.
            let ka = m.known_alias.trim_start_matches("forum_a_user");
            let ua = m.unknown_alias.trim_start_matches("forum_b_user");
            assert_eq!(ka, ua, "{m:?}");
            assert!(m.score >= 0.3);
        }
    }

    #[test]
    fn batched_link_agrees_with_unbatched() {
        let known = corpus("forum_a", 0);
        let unknown = corpus("forum_b", 1800);
        let mut cfg = LinkerConfig::default();
        cfg.two_stage.k = 2;
        cfg.two_stage.threshold = 0.3;
        cfg.two_stage.threads = 2;
        let plain = Linker::new(cfg.clone()).link(&known, &unknown);
        // A batch larger than the known set degenerates to a single round
        // over the full pool, so the outputs must agree exactly.
        cfg.batch = Some(BatchConfig { batch_size: 16 });
        let batched = Linker::new(cfg).try_link(&known, &unknown).unwrap();
        assert_eq!(plain, batched);
    }

    #[test]
    fn budget_only_link_matches_explicit_derived_batch() {
        use crate::batch::{budget_overhead_bytes, budget_per_candidate_bytes};
        let known = corpus("forum_a", 0);
        let unknown = corpus("forum_b", 1800);
        let mut cfg = LinkerConfig::default();
        cfg.two_stage.k = 2;
        cfg.two_stage.threshold = 0.3;
        cfg.two_stage.threads = 2;
        // Compute the budget against the same datasets the linker builds.
        let probe = Linker::new(cfg.clone());
        let (known_ds, unknown_ds) = (probe.prepare(&known), probe.prepare(&unknown));
        let budget = darklight_govern::MemoryBudget::from_bytes(
            budget_overhead_bytes(&unknown_ds) + 2 * budget_per_candidate_bytes(&known_ds),
        )
        .unwrap();
        let derived = BatchConfig::derive(&budget, &known_ds, &unknown_ds).unwrap();
        assert_eq!(derived.batch_size, 2);
        let mut explicit_cfg = cfg.clone();
        explicit_cfg.batch = Some(derived);
        let explicit = Linker::new(explicit_cfg)
            .try_link(&known, &unknown)
            .unwrap();
        let mut governed_cfg = cfg;
        governed_cfg.two_stage.govern.budget = Some(budget);
        let governed = Linker::new(governed_cfg)
            .try_link(&known, &unknown)
            .unwrap();
        assert_eq!(explicit, governed);
    }

    #[test]
    fn zero_batch_size_is_a_typed_error_through_the_linker() {
        let known = corpus("forum_a", 0);
        let unknown = corpus("forum_b", 1800);
        let mut cfg = LinkerConfig::default();
        cfg.two_stage.threads = 2;
        cfg.batch = Some(BatchConfig { batch_size: 0 });
        let err = Linker::new(cfg).try_link(&known, &unknown).unwrap_err();
        assert!(matches!(err, BatchError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn artifact_serving_matches_fresh_link_exactly() {
        let known = corpus("forum_a", 0);
        let unknown = corpus("forum_b", 1800);
        let mut cfg = LinkerConfig::default();
        cfg.two_stage.k = 2;
        cfg.two_stage.threshold = 0.3;
        cfg.two_stage.threads = 2;
        let linker = Linker::new(cfg);
        let fresh = linker.link(&known, &unknown);
        let artifact = linker.fit_artifact(&known);
        let served = linker.link_with_artifact(&artifact, &unknown);
        assert_eq!(fresh.len(), served.len());
        for (a, b) in fresh.iter().zip(&served) {
            assert_eq!(a.known_alias, b.known_alias);
            assert_eq!(a.unknown_alias, b.unknown_alias);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn empty_corpora_yield_no_matches() {
        let linker = Linker::default();
        let empty = Corpus::new("e");
        assert!(linker.link(&empty, &empty).is_empty());
        let known = corpus("a", 0);
        assert!(linker.link(&known, &empty).is_empty());
    }

    #[test]
    fn prepare_refines_thin_users_away() {
        let mut c = corpus("x", 0);
        let mut thin = User::new("thin_user", None);
        thin.posts
            .push(Post::new("one short post only", 1_486_375_200));
        c.users.push(thin);
        let linker = Linker::default();
        let ds = linker.prepare(&c);
        assert!(ds.index_of("thin_user").is_none());
        assert_eq!(ds.len(), 4);
    }
}
