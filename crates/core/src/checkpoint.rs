//! Batch-attribution checkpoints (crash recovery for §IV-J runs).
//!
//! `run_batched` exists for resource-constrained hardware, which is
//! exactly where attribution runs take hours and interruptions are
//! routine; without a checkpoint, a crash in round 7 forfeits rounds
//! 1–6. This module persists the inter-round state — the per-unknown
//! survivor pools plus the number of completed rounds — to a small JSON
//! file after every round, and loads it back on resume.
//!
//! The file is written with the serde-free [`darklight_obs::Json`]
//! writer and read back with its parser, in the same style as the
//! metrics snapshots. Writes go to a `.tmp` sibling first and are
//! `rename`d into place, so a crash mid-write leaves the previous
//! checkpoint intact rather than a torn file.
//!
//! A checkpoint is only as good as the run it belongs to: resuming round
//! 7's pools against a different corpus or a different `k` would produce
//! confidently wrong rankings. Every checkpoint therefore embeds a
//! **fingerprint** — an FNV-1a hash over the attribution configuration
//! and both datasets' contents — and [`load`] callers refuse to resume
//! when the fingerprint of the current run does not match (see
//! `run_batched_checkpointed`).

use darklight_govern::{fault, with_retry, RetryPolicy};
use darklight_obs::{Json, PipelineMetrics};
use std::fmt;
use std::path::Path;

/// Format version written into every checkpoint file.
pub const CHECKPOINT_VERSION: u64 = 1;

/// The persisted inter-round state of a batched attribution run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Hash of the run configuration + dataset contents (see
    /// [`Fnv1a`]); resuming requires an exact match.
    pub fingerprint: u64,
    /// Rounds completed when this checkpoint was written.
    pub rounds_done: u64,
    /// Per-unknown surviving candidate indices into the known dataset.
    pub survivors: Vec<Vec<usize>>,
}

/// Errors loading or saving a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file exists but is not a valid checkpoint.
    Malformed(String),
    /// The checkpoint belongs to a different run (config or corpus
    /// changed since it was written).
    FingerprintMismatch {
        /// Fingerprint of the current run.
        expected: u64,
        /// Fingerprint stored in the file.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Malformed(why) => write!(f, "malformed checkpoint: {why}"),
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint {found:#018x} does not match this run's \
                 {expected:#018x} — the config or corpus changed since it was written; \
                 delete the checkpoint (or point --checkpoint elsewhere) to start fresh"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

/// Incremental FNV-1a 64-bit hasher — stable across runs, platforms, and
/// Rust versions (unlike `DefaultHasher`, whose algorithm is unspecified),
/// which a fingerprint persisted to disk requires.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Feeds a string plus a separator so adjacent fields cannot collide
    /// by concatenation (`"ab","c"` vs `"a","bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xff]);
    }

    /// Feeds an integer in a fixed-width encoding.
    pub fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

fn get_u64(doc: &Json, key: &str) -> Result<u64, CheckpointError> {
    match doc.get(key) {
        Some(Json::UInt(n)) => Ok(*n),
        other => Err(CheckpointError::Malformed(format!(
            "field {key:?} missing or not an unsigned integer (got {other:?})"
        ))),
    }
}

/// Serializes a checkpoint to its JSON document.
fn to_json(ck: &Checkpoint) -> Json {
    let mut doc = Json::object();
    doc.set("version", Json::UInt(CHECKPOINT_VERSION));
    doc.set("fingerprint", Json::UInt(ck.fingerprint));
    doc.set("rounds_done", Json::UInt(ck.rounds_done));
    doc.set(
        "survivors",
        Json::Array(
            ck.survivors
                .iter()
                .map(|pool| Json::Array(pool.iter().map(|&i| Json::UInt(i as u64)).collect()))
                .collect(),
        ),
    );
    doc
}

/// Parses a checkpoint from its JSON document.
fn from_json(doc: &Json) -> Result<Checkpoint, CheckpointError> {
    let version = get_u64(doc, "version")?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::Malformed(format!(
            "unsupported checkpoint version {version} (this build reads {CHECKPOINT_VERSION})"
        )));
    }
    let fingerprint = get_u64(doc, "fingerprint")?;
    let rounds_done = get_u64(doc, "rounds_done")?;
    let Some(Json::Array(pools)) = doc.get("survivors") else {
        return Err(CheckpointError::Malformed(
            "field \"survivors\" missing or not an array".to_string(),
        ));
    };
    let mut survivors = Vec::with_capacity(pools.len());
    for pool in pools {
        let Json::Array(items) = pool else {
            return Err(CheckpointError::Malformed(
                "survivor pool is not an array".to_string(),
            ));
        };
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            match item {
                Json::UInt(n) => out.push(*n as usize),
                other => {
                    return Err(CheckpointError::Malformed(format!(
                        "survivor index is not an unsigned integer (got {other:?})"
                    )))
                }
            }
        }
        survivors.push(out);
    }
    Ok(Checkpoint {
        fingerprint,
        rounds_done,
        survivors,
    })
}

/// Atomically and durably writes `ck` to `path` (tmp sibling, fsync,
/// rename, directory fsync).
///
/// The temp file is `sync_all`'d *before* the rename — renaming an
/// unsynced file can leave a zero-length or torn "checkpoint" after a
/// crash, which is worse than no checkpoint because resume would trust
/// it. The parent directory is then fsynced so the rename itself
/// survives a crash (on platforms where directories can be opened).
///
/// # Errors
///
/// Propagates I/O failures; on error the previous checkpoint at `path`,
/// if any, is left untouched.
pub fn save(path: &Path, ck: &Checkpoint) -> Result<(), CheckpointError> {
    fault::maybe_fail_io("checkpoint.save")?;
    let tmp = path.with_extension("tmp");
    {
        use std::io::Write as _;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(to_json(ck).render_pretty().as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    #[cfg(unix)]
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Whether a checkpoint error is worth retrying: I/O failures are
/// (possibly transient outage), corruption and fingerprint mismatches
/// are not (retrying re-reads the same bad bytes).
fn is_transient(e: &CheckpointError) -> bool {
    matches!(e, CheckpointError::Io(_))
}

/// [`save`] wrapped in the governor's jittered-backoff retry (site
/// `checkpoint.save`); `seed` should be the run fingerprint so the
/// backoff schedule is deterministic per run.
///
/// # Errors
///
/// The last [`CheckpointError::Io`] once retries are exhausted, or the
/// first non-transient error.
pub fn save_retrying(
    path: &Path,
    ck: &Checkpoint,
    policy: &RetryPolicy,
    seed: u64,
    metrics: &PipelineMetrics,
) -> Result<(), CheckpointError> {
    with_retry(
        "checkpoint.save",
        policy,
        seed,
        metrics,
        is_transient,
        || save(path, ck),
    )
}

/// Loads the checkpoint at `path`; `Ok(None)` when no file exists (a
/// fresh run, not an error).
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on read failures other than
/// not-found, and [`CheckpointError::Malformed`] when the file does not
/// parse as a supported checkpoint.
pub fn load(path: &Path) -> Result<Option<Checkpoint>, CheckpointError> {
    fault::maybe_fail_io("checkpoint.load")?;
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(CheckpointError::Io(e)),
    };
    let doc = Json::parse(&text).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
    Ok(Some(from_json(&doc)?))
}

/// [`load`] wrapped in the governor's retry (site `checkpoint.load`);
/// see [`save_retrying`].
///
/// # Errors
///
/// The last [`CheckpointError::Io`] once retries are exhausted, or the
/// first non-transient error ([`CheckpointError::Malformed`] /
/// [`CheckpointError::FingerprintMismatch`] never retry).
pub fn load_retrying(
    path: &Path,
    policy: &RetryPolicy,
    seed: u64,
    metrics: &PipelineMetrics,
) -> Result<Option<Checkpoint>, CheckpointError> {
    with_retry(
        "checkpoint.load",
        policy,
        seed,
        metrics,
        is_transient,
        || load(path),
    )
}

/// Removes the checkpoint at `path` (best-effort; absent is fine).
pub fn remove(path: &Path) {
    let _ = std::fs::remove_file(path);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("darklight_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: 0xdead_beef_cafe_f00d,
            rounds_done: 3,
            survivors: vec![vec![0, 4, 17], vec![], vec![2]],
        }
    }

    #[test]
    fn save_load_round_trip() {
        let path = temp_path("roundtrip.json");
        let ck = sample();
        save(&path, &ck).unwrap();
        assert_eq!(load(&path).unwrap().unwrap(), ck);
        remove(&path);
        assert_eq!(load(&path).unwrap(), None);
    }

    #[test]
    fn missing_file_is_a_fresh_run() {
        assert!(load(Path::new("/nonexistent/dir/ck.json"))
            .unwrap()
            .is_none());
    }

    #[test]
    fn malformed_files_are_typed_errors() {
        let path = temp_path("malformed.json");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(matches!(
            load(&path).unwrap_err(),
            CheckpointError::Malformed(_)
        ));
        std::fs::write(&path, "{\"version\": 999}").unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.to_string().contains("version 999"), "{err}");
        remove(&path);
    }

    #[test]
    fn fnv1a_is_stable_and_separator_safe() {
        let mut a = Fnv1a::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
        // Pinned digest: the fingerprint must be stable across builds, or
        // every upgrade would invalidate on-disk checkpoints.
        let mut h = Fnv1a::new();
        h.write(b"darklight");
        assert_eq!(h.finish(), 0xf350_767a_c37e_d7cf);
    }

    #[test]
    fn saved_bytes_are_identical_across_repeated_runs() {
        // The checkpoint file participates in the byte-identical resume
        // guarantee: saving the same logical state twice must produce the
        // same bytes (no HashMap iteration, no timestamps, no randomness
        // anywhere in the serialization path).
        let a = temp_path("stable_a.json");
        let b = temp_path("stable_b.json");
        save(&a, &sample()).unwrap();
        save(&b, &sample()).unwrap();
        assert_eq!(
            std::fs::read(&a).unwrap(),
            std::fs::read(&b).unwrap(),
            "checkpoint serialization is not byte-deterministic"
        );
        remove(&a);
        remove(&b);
    }

    #[test]
    fn save_is_atomic_against_partial_writes() {
        let path = temp_path("atomic.json");
        save(&path, &sample()).unwrap();
        // A stale tmp sibling (crash between write and rename) must not
        // break subsequent saves or loads.
        std::fs::write(path.with_extension("tmp"), "garbage").unwrap();
        let mut ck = sample();
        ck.rounds_done = 4;
        save(&path, &ck).unwrap();
        assert_eq!(load(&path).unwrap().unwrap().rounds_done, 4);
        remove(&path);
    }
}
